#include "serve/serve.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <utility>

#include "exec/cancel.hpp"
#include "exec/seed.hpp"
#include "linalg/simd/simd.hpp"
#include "obs/json.hpp"
#include "timeseries/resource.hpp"

namespace atm::serve {

namespace {

/// Lag-feature count of the streaming MLP, matching MlpForecasterOptions
/// so the serve model is the batch pipeline's temporal model.
constexpr int kNumLags = 6;
constexpr int kHiddenUnits = 12;

// FNV-1a field mixers, same chain discipline as the fleet digests (the
// fleet_journal.cpp helpers are file-local by design — digests must not
// accidentally share a chain).
void mix_u64(std::uint64_t& hash, std::uint64_t value) {
    char bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(value >> (8 * i));
    hash = exec::fnv1a64_mix(hash, std::string_view(bytes, 8));
}

void mix_double(std::uint64_t& hash, double value) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    mix_u64(hash, bits);
}

void mix_string(std::uint64_t& hash, const std::string& text) {
    hash = exec::fnv1a64_mix(hash, text);
    mix_u64(hash, text.size());
}

std::string hex16(std::uint64_t value) {
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(value));
    return buffer;
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine-internal state

/// One warm-startable per-signature temporal model. For the MLP the
/// scaler is pinned at cold-fit time so warm retrains continue in the
/// same feature space; a history that drifts outside it forces a cold
/// refit (rescale) instead of training on out-of-range features.
struct ServeEngine::WarmModel {
    bool mlp = false;  ///< false = seasonal naive (stateless)
    std::unique_ptr<forecast::MlpNetwork> net;
    ts::MinMaxScaler scaler;
    bool degenerate = true;
};

struct ServeEngine::BoxMeta {
    std::string name;
    double cpu_capacity = 0.0;
    double ram_capacity = 0.0;
    std::vector<double> vm_cpu_capacity;
    std::vector<double> vm_ram_capacity;
};

struct ServeEngine::BoxState {
    /// Rolling demand history per flat series (VM-major CPU,RAM), capped
    /// at train_len_ samples. All rows stay equal length by construction.
    std::vector<std::vector<double>> history;
    std::uint64_t next_epoch = 0;

    bool has_model = false;
    std::vector<int> signatures;  ///< flat indices, spatial fit order
    core::SpatialModel spatial;
    std::vector<WarmModel> models;  ///< parallel to `signatures`
    double corr_at_search = 0.0;

    std::vector<double> last_forecast;  ///< per flat series, next window
    bool has_forecast = false;
    std::vector<double> rec_cpu;  ///< per-VM recommended allocations
    std::vector<double> rec_ram;
    bool has_rec = false;

    /// Journaled windows awaiting replay after a warm restart.
    std::deque<core::ServeEpochRecord> replay;
};

/// Control decisions of one window: taken live (SLO / faults) or forced
/// from the journal on replay — the only non-determinism the journal has
/// to pin down for bit-identical warm restart.
struct ServeEngine::Decisions {
    bool forced = false;
    int ladder = 0;  ///< ServeEpochRecord bitmask
    bool searched = false;
    int retrained = 0;
    int attempts = 1;
};

namespace {
constexpr int kShedRefresh = 1;     ///< search or retrain skipped
constexpr int kShedForecast = 2;    ///< last forecast reused
constexpr int kShedResize = 4;      ///< max-min fallback resize
constexpr int kShedIngestOnly = 8;  ///< no model output this window
}  // namespace

// ---------------------------------------------------------------------------
// Config validation, digest, header

std::string ServeConfig::validate() const {
    std::vector<std::string> problems;
    auto add = [&problems](std::string message) {
        problems.push_back(std::move(message));
    };
    const core::PipelineConfig& p = pipeline;
    if (p.train_days < 2) {
        add("train_days must be >= 2 (serve keeps a rolling window and "
            "needs at least warmup + one day), got " +
            std::to_string(p.train_days));
    }
    if (!(p.alpha > 0.0) || p.alpha > 1.0 || !std::isfinite(p.alpha)) {
        add("alpha must be in (0, 1], got " + std::to_string(p.alpha));
    }
    if (!std::isfinite(p.epsilon_pct)) {
        add("epsilon_pct must be finite, got " + std::to_string(p.epsilon_pct));
    }
    if (p.temporal != forecast::TemporalModel::kNeuralNetwork &&
        p.temporal != forecast::TemporalModel::kSeasonalNaive) {
        add("temporal model must be neural-network or seasonal-naive for "
            "serve (warm restart requires warm-startable models), got " +
            forecast::to_string(p.temporal));
    }
    if (p.scope != core::ResourceScope::kInter) {
        add("scope must be inter for serve");
    }
    if (queue_depth < 1 || queue_depth > (1 << 20)) {
        add("queue_depth must be in [1, 1048576], got " +
            std::to_string(queue_depth));
    }
    if (!(slo_ms >= 0.0) || !std::isfinite(slo_ms)) {
        add("slo_ms must be >= 0 and finite, got " + std::to_string(slo_ms));
    }
    if (!(drift_threshold >= 0.0) || !std::isfinite(drift_threshold)) {
        add("drift_threshold must be >= 0 and finite, got " +
            std::to_string(drift_threshold));
    }
    if (retrain_every < 1) {
        add("retrain_every must be >= 1, got " + std::to_string(retrain_every));
    }
    if (retrain_epochs < 1) {
        add("retrain_epochs must be >= 1, got " +
            std::to_string(retrain_epochs));
    }
    if (train_epochs < 1) {
        add("train_epochs must be >= 1, got " + std::to_string(train_epochs));
    }
    if (max_retries < 0) {
        add("max_retries must be >= 0, got " + std::to_string(max_retries));
    }
    if (!(backoff_ms >= 0.0) || !std::isfinite(backoff_ms)) {
        add("backoff_ms must be >= 0 and finite, got " +
            std::to_string(backoff_ms));
    }
    if (!(backoff_max_ms >= backoff_ms) || !std::isfinite(backoff_max_ms)) {
        add("backoff_max_ms must be >= backoff_ms and finite, got " +
            std::to_string(backoff_max_ms));
    }
    if (resume && journal_path.empty()) {
        add("resume requires a journal path");
    }
    std::string joined;
    for (const std::string& problem : problems) {
        if (!joined.empty()) joined += "; ";
        joined += problem;
    }
    return joined;
}

std::uint64_t serve_config_digest(const ServeConfig& config) {
    std::uint64_t hash = exec::kFnv1a64Offset;
    mix_u64(hash, core::pipeline_config_digest(config.pipeline));
    mix_u64(hash, static_cast<std::uint64_t>(config.policy));
    mix_double(hash, config.drift_threshold);
    mix_u64(hash, static_cast<std::uint64_t>(config.retrain_every));
    mix_u64(hash, static_cast<std::uint64_t>(config.retrain_epochs));
    mix_u64(hash, static_cast<std::uint64_t>(config.train_epochs));
    // Retry/fault knobs are result-affecting through the journaled
    // attempt counts and the per-(epoch, attempt) fault draws.
    mix_u64(hash, static_cast<std::uint64_t>(config.max_retries));
    mix_u64(hash, config.faults.seed);
    mix_u64(hash, config.faults.rules.size());
    for (const exec::FaultRule& rule : config.faults.rules) {
        mix_string(hash, rule.site);
        mix_u64(hash, static_cast<std::uint64_t>(rule.action));
        mix_double(hash, rule.rate);
    }
    // Deliberately excluded: queue_depth, slo_ms, backoff timings — their
    // *effects* (shed masks, attempt counts) are journaled per window, so
    // changing them across a restart only affects windows not yet applied.
    return hash;
}

std::string serve_journal_header(const trace::Trace& trace,
                                 const ServeConfig& config) {
    obs::json::Value header = obs::json::Value::make_object();
    header.set("schema", obs::json::Value::of(core::kServeJournalSchema));
    header.set("fingerprint",
               obs::json::Value::of(hex16(core::trace_fingerprint(trace))));
    header.set("config",
               obs::json::Value::of(hex16(serve_config_digest(config))));
    header.set("seed", obs::json::Value::of(
                           static_cast<std::uint64_t>(config.pipeline.seed)));
    // Same rationale as the fleet journal: the dispatched SIMD path is
    // result-affecting, so a mismatch makes resume start fresh.
    header.set("simd",
               obs::json::Value::of(simd::to_string(simd::active_path())));
    return obs::json::serialize(header, 0);
}

const char* to_string(ApplyStatus status) {
    switch (status) {
        case ApplyStatus::kApplied: return "applied";
        case ApplyStatus::kWarming: return "warming";
        case ApplyStatus::kStale: return "stale";
        case ApplyStatus::kGap: return "gap";
        case ApplyStatus::kBadShape: return "bad-shape";
    }
    return "unknown";
}

// ---------------------------------------------------------------------------
// Construction / resume

ServeEngine::ServeEngine(const trace::Trace& trace, ServeConfig config)
    : config_(std::move(config)) {
    const std::string problems = config_.validate();
    if (!problems.empty()) {
        throw std::invalid_argument("ServeConfig: " + problems);
    }
    if (trace.windows_per_day <= 0) {
        throw std::invalid_argument("serve: windows_per_day must be > 0");
    }
    windows_per_day_ = trace.windows_per_day;
    train_len_ = static_cast<std::size_t>(config_.pipeline.train_days) *
                 static_cast<std::size_t>(windows_per_day_);
    // Model work needs a full seasonal period of lag history plus a day to
    // learn from; below this the engine just accumulates samples.
    warmup_len_ = 2 * static_cast<std::size_t>(windows_per_day_);

    meta_.reserve(trace.boxes.size());
    boxes_.reserve(trace.boxes.size());
    for (const trace::BoxTrace& box : trace.boxes) {
        BoxMeta meta;
        meta.name = box.name;
        meta.cpu_capacity = box.cpu_capacity_ghz;
        meta.ram_capacity = box.ram_capacity_gb;
        for (const trace::VmTrace& vm : box.vms) {
            meta.vm_cpu_capacity.push_back(vm.cpu_capacity_ghz);
            meta.vm_ram_capacity.push_back(vm.ram_capacity_gb);
        }
        meta_.push_back(std::move(meta));
        auto state = std::make_unique<BoxState>();
        state->history.resize(box.vms.size() * 2);
        boxes_.push_back(std::move(state));
    }

    if (config_.journal_path.empty()) return;
    const std::string header = serve_journal_header(trace, config_);
    if (config_.resume) {
        const exec::JournalLoad load = exec::load_journal(config_.journal_path);
        if (load.exists && load.header == header) {
            // Accept the longest decodable prefix whose per-box epochs are
            // contiguous from 0; anything after the first bad record is
            // treated like checksum corruption and physically truncated.
            std::uint64_t good = load.header_end;
            std::vector<std::uint64_t> expected(boxes_.size(), 0);
            for (std::size_t i = 0; i < load.records.size(); ++i) {
                core::ServeEpochRecord record;
                try {
                    record = core::decode_epoch_record(load.records[i]);
                    if (record.box_index < 0 ||
                        record.box_index >=
                            static_cast<int>(boxes_.size())) {
                        throw std::runtime_error(
                            "serve journal: box index out of range");
                    }
                    const auto bi = static_cast<std::size_t>(record.box_index);
                    if (record.epoch != expected[bi]) {
                        throw std::runtime_error(
                            "serve journal: epoch out of order");
                    }
                    ++expected[bi];
                } catch (const std::exception&) {
                    break;
                }
                boxes_[static_cast<std::size_t>(record.box_index)]
                    ->replay.push_back(std::move(record));
                good = load.record_ends[i];
            }
            journal_ =
                exec::JournalWriter::append_after(config_.journal_path, good);
            resumed_ = true;
            return;
        }
    }
    journal_ = exec::JournalWriter::create(config_.journal_path, header);
}

ServeEngine::~ServeEngine() = default;

int ServeEngine::num_boxes() const { return static_cast<int>(boxes_.size()); }

int ServeEngine::find_box(const std::string& name) const {
    for (std::size_t i = 0; i < meta_.size(); ++i) {
        if (meta_[i].name == name) return static_cast<int>(i);
    }
    return -1;
}

std::uint64_t ServeEngine::next_epoch(int box_index) const {
    return boxes_.at(static_cast<std::size_t>(box_index))->next_epoch;
}

std::uint64_t ServeEngine::replay_remaining() const {
    std::uint64_t remaining = 0;
    for (const auto& box : boxes_) remaining += box->replay.size();
    return remaining;
}

void ServeEngine::close() {
    if (journal_) {
        journal_->close();
        journal_.reset();
    }
}

// ---------------------------------------------------------------------------
// apply

ApplyOutcome ServeEngine::apply(const WindowUpdate& update) {
    ApplyOutcome out;
    out.epoch = update.epoch;
    if (update.box_index < 0 ||
        update.box_index >= static_cast<int>(boxes_.size())) {
        out.status = ApplyStatus::kBadShape;
        out.error = "unknown box index " + std::to_string(update.box_index);
        return out;
    }
    const auto bi = static_cast<std::size_t>(update.box_index);
    const BoxMeta& meta = meta_[bi];
    BoxState& box = *boxes_[bi];
    const std::size_t num_vms = meta.vm_cpu_capacity.size();
    if (num_vms == 0 || update.cpu.size() != num_vms ||
        update.ram.size() != num_vms) {
        out.status = ApplyStatus::kBadShape;
        out.error = "box " + meta.name + " has " + std::to_string(num_vms) +
                    " VMs, update has " + std::to_string(update.cpu.size()) +
                    " cpu / " + std::to_string(update.ram.size()) +
                    " ram samples";
        return out;
    }
    if (update.epoch < box.next_epoch) {
        out.status = ApplyStatus::kStale;
        return out;
    }
    if (update.epoch > box.next_epoch) {
        out.status = ApplyStatus::kGap;
        out.error = "expected epoch " + std::to_string(box.next_epoch) +
                    ", got " + std::to_string(update.epoch);
        return out;
    }

    const core::ServeEpochRecord* forced =
        box.replay.empty() ? nullptr : &box.replay.front();
    core::ServeEpochRecord record;
    out = apply_window(update.box_index, update, forced, record);
    if (forced != nullptr) {
        // Replay consistency: the recomputation under forced decisions
        // must be bit-identical to what the journal recorded. A mismatch
        // means the determinism contract is broken — fail loudly rather
        // than serve silently-diverged recommendations.
        if (record.ladder != forced->ladder || record.cpu != forced->cpu ||
            record.ram != forced->ram) {
            throw std::runtime_error(
                "serve journal: replay diverged for box " + meta.name +
                " epoch " + std::to_string(update.epoch));
        }
        box.replay.pop_front();
    } else if (journal_) {
        journal_->append(core::encode_epoch_record(record));
    }
    ++box.next_epoch;
    return out;
}

ApplyOutcome ServeEngine::apply_window(int box_index,
                                       const WindowUpdate& update,
                                       const core::ServeEpochRecord* forced,
                                       core::ServeEpochRecord& record) {
    BoxState& box = *boxes_[static_cast<std::size_t>(box_index)];
    record.box_index = box_index;
    record.epoch = update.epoch;

    ingest_samples(box_index, update);

    ApplyOutcome out;
    out.epoch = update.epoch;
    if (box.history[0].size() < warmup_len_) {
        counter("serve.windows.warming");
        out.status = ApplyStatus::kWarming;
        return out;
    }

    Decisions d;
    if (forced != nullptr) {
        d.forced = true;
        d.ladder = forced->ladder;
        d.searched = forced->searched;
        d.retrained = forced->retrained;
        d.attempts = forced->attempts;
        // A ladder of *exactly* the ingest-only bit means retries were
        // exhausted at the fault site and model_work never ran live —
        // replaying it would over-count shed counters. Any other mask
        // (even ones including bit 8, e.g. "search shed, still no
        // model") means model_work did run and must replay so its
        // counters and the drift gauge land identically.
        if (d.ladder != kShedIngestOnly) {
            model_work(box_index, update.epoch, d, nullptr);
        }
    } else {
        exec::CancellationToken slo;
        const exec::CancellationToken* token = nullptr;
        if (config_.slo_ms > 0.0) {
            slo.arm_deadline_after(config_.slo_ms / 1000.0);
            token = &slo;
        }
        int attempt = 0;
        bool applied = false;
        while (true) {
            exec::FaultContext fault;
            fault.plan = config_.faults.empty() ? nullptr : &config_.faults;
            fault.entity = static_cast<std::uint64_t>(box_index);
            fault.attempt = static_cast<std::uint64_t>(attempt);
            // +1 so epoch 0 still re-rolls per window (0 means "unset" in
            // the fault-key chain).
            fault.epoch = update.epoch + 1;
            try {
                ATM_FAULT_SITE(fault, "serve.apply");
                model_work(box_index, update.epoch, d, token);
                applied = true;
                break;
            } catch (const exec::InjectedFault&) {
                if (attempt >= config_.max_retries) break;
                const double delay_ms =
                    std::min(config_.backoff_ms * static_cast<double>(1 << attempt),
                             config_.backoff_max_ms);
                if (delay_ms > 0.0) {
                    std::this_thread::sleep_for(std::chrono::duration<double,
                                                std::milli>(delay_ms));
                }
                ++attempt;
            }
        }
        d.attempts = attempt + 1;
        if (!applied) d.ladder |= kShedIngestOnly;
    }

    if ((d.ladder & kShedIngestOnly) != 0) counter("serve.degraded.ingest_only");
    record_retry(d.attempts, d.ladder);
    counter("serve.windows.applied");

    record.ladder = d.ladder;
    record.searched = d.searched;
    record.retrained = d.retrained;
    record.attempts = d.attempts;
    if ((d.ladder & kShedIngestOnly) == 0 && box.has_rec) {
        record.cpu = box.rec_cpu;
        record.ram = box.rec_ram;
    }
    out.status = ApplyStatus::kApplied;
    out.ladder = d.ladder;
    out.attempts = d.attempts;
    out.cpu = record.cpu;
    out.ram = record.ram;
    return out;
}

void ServeEngine::ingest_samples(int box_index, const WindowUpdate& update) {
    const auto bi = static_cast<std::size_t>(box_index);
    const BoxMeta& meta = meta_[bi];
    BoxState& box = *boxes_[bi];
    const double alpha = config_.pipeline.alpha;
    std::uint64_t bad = 0;
    for (std::size_t vm = 0; vm < meta.vm_cpu_capacity.size(); ++vm) {
        for (int kind = 0; kind < 2; ++kind) {
            const bool is_cpu = kind == 0;
            const std::size_t flat = vm * 2 + static_cast<std::size_t>(kind);
            std::vector<double>& history = box.history[flat];
            double actual = is_cpu ? update.cpu[vm] : update.ram[vm];
            if (!std::isfinite(actual) || actual < 0.0) {
                ++bad;
                actual = history.empty() ? 0.0 : history.back();
            }
            // Rolling one-step forecast accuracy (vs. last_forecast, which
            // predicted exactly this window) and ticket accounting on the
            // static allocation vs. the engine's recommendation.
            if (box.has_forecast && std::abs(actual) > 1e-9) {
                const double ape =
                    std::abs(actual - box.last_forecast[flat]) /
                    std::abs(actual);
                if (std::isfinite(ape)) {
                    obs::HistogramSnapshot& hist = metrics_.histograms["serve.ape"];
                    if (hist.bounds.empty() && hist.count == 0) {
                        const auto bounds = obs::default_histogram_bounds();
                        hist.bounds.assign(bounds.begin(), bounds.end());
                    }
                    hist.record(ape);
                }
            }
            const double static_cap = is_cpu ? meta.vm_cpu_capacity[vm]
                                             : meta.vm_ram_capacity[vm];
            const char* kind_name = is_cpu ? "cpu" : "ram";
            if (actual > alpha * static_cap) {
                counter(std::string("serve.tickets.") + kind_name + ".before");
            }
            if (box.has_rec) {
                const double rec_cap =
                    is_cpu ? box.rec_cpu[vm] : box.rec_ram[vm];
                if (actual > alpha * rec_cap) {
                    counter(std::string("serve.tickets.") + kind_name +
                            ".after");
                }
            }
            history.push_back(actual);
            if (history.size() > train_len_) {
                history.erase(history.begin());
            }
        }
    }
    if (bad != 0) counter("serve.sanitize.bad_samples", bad);
}

// ---------------------------------------------------------------------------
// Per-window model work (live + forced replay)

void ServeEngine::model_work(int box_index, std::uint64_t epoch, Decisions& d,
                             const exec::CancellationToken* slo) {
    BoxState& box = *boxes_[static_cast<std::size_t>(box_index)];

    // Drift-gated signature search. The drift statistic is deterministic
    // (history only), so live and replay agree on *wanting* a search; the
    // journal pins whether one actually ran (SLO shed is wall-clock).
    bool want_search = !box.has_model;
    if (box.has_model) {
        const double drift =
            std::abs(mean_abs_correlation(box) - box.corr_at_search);
        metrics_.gauges["serve.drift"] = drift;
        if (drift > config_.drift_threshold) want_search = true;
    }
    if (d.forced ? d.searched : want_search) {
        const bool committed =
            run_search(box_index, d.forced ? nullptr : slo);
        if (!d.forced) d.searched = committed;
    }
    if (d.searched) {
        counter("serve.search.runs");
    } else if (want_search) {
        counter("serve.degraded.skip_search");
        if (!d.forced) d.ladder |= kShedRefresh;
    }

    // Warm retrain on a fixed cadence (deterministic), skipped the window
    // a search already cold-fit everything.
    const bool retrain_due =
        box.has_model && !d.searched &&
        config_.pipeline.temporal == forecast::TemporalModel::kNeuralNetwork &&
        epoch % static_cast<std::uint64_t>(config_.retrain_every) == 0;
    if (d.forced ? d.retrained != 0 : retrain_due) {
        bool committed = false;
        if (d.forced || slo == nullptr || !slo->cancelled()) {
            committed = run_retrain(box_index, epoch, d.forced ? nullptr : slo);
        }
        if (!d.forced) d.retrained = committed ? 1 : 0;
        if (committed || d.forced) counter("serve.retrain.warm");
    }
    if (retrain_due && d.retrained == 0) {
        counter("serve.degraded.skip_retrain");
        if (!d.forced) d.ladder |= kShedRefresh;
    }

    if (!box.has_model) {
        // Nothing to shed to: no spatial model yet and this window's
        // search did not land one.
        d.ladder |= kShedIngestOnly;
        return;
    }

    // Forecast the next window, or reuse the previous forecast under SLO
    // pressure (rung 2).
    bool reuse = d.forced && (d.ladder & kShedForecast) != 0;
    if (!d.forced && slo != nullptr && slo->cancelled()) {
        reuse = true;
        d.ladder |= kShedForecast;
    }
    if (reuse && !box.has_forecast) {
        d.ladder |= kShedIngestOnly;
        return;
    }
    if (reuse) {
        counter("serve.degraded.reuse_forecast");
    } else {
        forecast_next(box_index);
    }

    // Resize on the forecast; under SLO pressure fall to max-min (rung 3),
    // which needs no MCKP iterations.
    bool max_min = d.forced && (d.ladder & kShedResize) != 0;
    if (!d.forced && !max_min) {
        try {
            exec::checkpoint(slo, "serve.resize");
            resize_window(box_index, false, slo);
        } catch (const exec::OperationCancelled&) {
            max_min = true;
            d.ladder |= kShedResize;
        }
    }
    if (max_min) {
        resize_window(box_index, true, nullptr);
        counter("serve.degraded.max_min");
    } else if (d.forced) {
        resize_window(box_index, false, nullptr);
    }
}

double ServeEngine::mean_abs_correlation(const BoxState& box) const {
    const std::size_t n = box.history.size();
    if (n < 2) return 0.0;
    const std::size_t len = box.history[0].size();
    if (len < 2) return 0.0;
    std::vector<double> mean(n, 0.0);
    std::vector<double> norm(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = 0.0;
        for (const double x : box.history[i]) sum += x;
        mean[i] = sum / static_cast<double>(len);
        double sq = 0.0;
        for (const double x : box.history[i]) {
            const double c = x - mean[i];
            sq += c * c;
        }
        norm[i] = std::sqrt(sq);
    }
    double total = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            ++pairs;
            if (norm[i] < 1e-12 || norm[j] < 1e-12) continue;
            double dot = 0.0;
            for (std::size_t t = 0; t < len; ++t) {
                dot += (box.history[i][t] - mean[i]) *
                       (box.history[j][t] - mean[j]);
            }
            total += std::abs(dot / (norm[i] * norm[j]));
        }
    }
    return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

bool ServeEngine::run_search(int box_index,
                             const exec::CancellationToken* slo) {
    const auto bi = static_cast<std::size_t>(box_index);
    BoxState& box = *boxes_[bi];
    // Staged: everything lands in locals + a scratch registry, committed
    // only when the whole unit finishes — an SLO trip mid-search leaves
    // the previous model (and metrics) untouched, so replay (which skips
    // the shed search entirely) reproduces the same state.
    obs::MetricsRegistry scratch;
    try {
        std::vector<int> signatures;
        core::SignatureSearchOptions options = config_.pipeline.search;
        options.metrics = &scratch;
        options.cancel = slo;
        options.pool = nullptr;
        options.dtw_cache = nullptr;  // history changes every window
        if (config_.workspace != nullptr) {
            options.dtw_workspace = &config_.workspace->dtw;
        }
        try {
            core::SignatureSearchResult result =
                core::find_signatures(box.history, options);
            signatures = std::move(result.signatures);
            if (signatures.empty()) throw std::runtime_error("empty set");
        } catch (const exec::OperationCancelled&) {
            throw;
        } catch (const std::exception&) {
            // Degenerate clustering: fall back to the all-signature set
            // (every series its own predictor), same as the batch ladder.
            signatures.clear();
            for (std::size_t i = 0; i < box.history.size(); ++i) {
                signatures.push_back(static_cast<int>(i));
            }
            scratch.add("serve.search.fallback");
        }
        core::SpatialModel spatial;
        try {
            spatial.fit(box.history, signatures);
        } catch (const exec::OperationCancelled&) {
            throw;
        } catch (const std::exception&) {
            signatures.clear();
            for (std::size_t i = 0; i < box.history.size(); ++i) {
                signatures.push_back(static_cast<int>(i));
            }
            spatial.fit(box.history, signatures);  // no dependents left
            scratch.add("serve.search.fallback");
        }
        std::vector<WarmModel> models(signatures.size());
        const std::uint64_t box_seed =
            exec::derive_seed(config_.pipeline.seed,
                              static_cast<std::uint64_t>(box_index));
        for (std::size_t k = 0; k < signatures.size(); ++k) {
            const auto series = static_cast<std::size_t>(signatures[k]);
            const std::uint64_t sig_seed =
                exec::derive_seed(box_seed, static_cast<std::uint64_t>(series));
            cold_fit(models[k], box.history[series], sig_seed, &scratch, slo);
            scratch.add("serve.retrain.cold");
        }
        box.signatures = std::move(signatures);
        box.spatial = std::move(spatial);
        box.models = std::move(models);
        box.has_model = true;
        box.corr_at_search = mean_abs_correlation(box);
        metrics_.merge(scratch.snapshot());
        return true;
    } catch (const exec::OperationCancelled&) {
        return false;
    }
}

bool ServeEngine::run_retrain(int box_index, std::uint64_t epoch,
                              const exec::CancellationToken* slo) {
    const auto bi = static_cast<std::size_t>(box_index);
    BoxState& box = *boxes_[bi];
    obs::MetricsRegistry scratch;
    const std::uint64_t box_seed = exec::derive_seed(
        config_.pipeline.seed, static_cast<std::uint64_t>(box_index));
    try {
        // Staged copies: a cancelled retrain must leave the previous
        // weights exactly as they were (replay skips the whole stage).
        std::vector<WarmModel> updated;
        updated.reserve(box.models.size());
        for (std::size_t k = 0; k < box.models.size(); ++k) {
            const WarmModel& current = box.models[k];
            const auto series = static_cast<std::size_t>(box.signatures[k]);
            const std::vector<double>& history = box.history[series];
            const std::uint64_t sig_seed =
                exec::derive_seed(box_seed, static_cast<std::uint64_t>(series));
            WarmModel next;
            const auto [lo_it, hi_it] =
                std::minmax_element(history.begin(), history.end());
            const double span = current.scaler.max() - current.scaler.min();
            const bool out_of_scale =
                current.degenerate || current.net == nullptr ||
                span < 1e-12 ||
                *lo_it < current.scaler.min() - 0.5 * span ||
                *hi_it > current.scaler.max() + 0.5 * span;
            if (out_of_scale) {
                // The rolling window left the pinned feature space: cold
                // refit with a fresh scaler instead of warm-starting.
                cold_fit(next, history,
                         exec::derive_seed(sig_seed, epoch + 1), &scratch,
                         slo);
                scratch.add("serve.retrain.rescale");
            } else {
                next.mlp = true;
                next.scaler = current.scaler;
                next.degenerate = false;
                next.net = std::make_unique<forecast::MlpNetwork>(*current.net);
                const std::vector<double> scaled =
                    current.scaler.transform(history);
                ts::make_lag_dataset_flat(scaled, kNumLags, windows_per_day_,
                                          features_, targets_);
                if (features_.rows() >= 4) {
                    forecast::MlpTrainOptions options;
                    options.epochs = config_.retrain_epochs;
                    options.seed = static_cast<unsigned>(
                        exec::derive_seed(sig_seed, epoch + 1));
                    options.metrics = &scratch;
                    options.cancel = slo;
                    next.net->train(
                        features_, targets_, options,
                        config_.workspace != nullptr ? &config_.workspace->mlp
                                                     : nullptr);
                }
            }
            updated.push_back(std::move(next));
        }
        box.models = std::move(updated);
        metrics_.merge(scratch.snapshot());
        return true;
    } catch (const exec::OperationCancelled&) {
        return false;
    }
}

void ServeEngine::cold_fit(WarmModel& model,
                           const std::vector<double>& history,
                           std::uint64_t sig_seed,
                           obs::MetricsRegistry* scratch,
                           const exec::CancellationToken* slo) {
    if (config_.pipeline.temporal != forecast::TemporalModel::kNeuralNetwork) {
        model.mlp = false;
        model.degenerate = false;
        return;
    }
    model.mlp = true;
    model.scaler.fit(history);
    const auto [lo_it, hi_it] =
        std::minmax_element(history.begin(), history.end());
    const std::vector<double> scaled = model.scaler.transform(history);
    ts::make_lag_dataset_flat(scaled, kNumLags, windows_per_day_, features_,
                              targets_);
    if (features_.rows() < 4 || *hi_it - *lo_it < 1e-12) {
        model.degenerate = true;
        model.net.reset();
        return;
    }
    model.degenerate = false;
    model.net = std::make_unique<forecast::MlpNetwork>(
        std::vector<int>{static_cast<int>(features_.cols()), kHiddenUnits, 1},
        forecast::Activation::kTanh, static_cast<unsigned>(sig_seed));
    forecast::MlpTrainOptions options;
    options.epochs = config_.train_epochs;
    options.seed = static_cast<unsigned>(sig_seed);
    options.metrics = scratch;
    options.cancel = slo;
    model.net->train(features_, targets_, options,
                     config_.workspace != nullptr ? &config_.workspace->mlp
                                                  : nullptr);
}

double ServeEngine::predict_one(const WarmModel& model,
                                const std::vector<double>& history) const {
    const std::size_t len = history.size();
    if (!model.mlp) {
        // Seasonal naive: repeat the sample one period back.
        const auto period = static_cast<std::size_t>(windows_per_day_);
        return len >= period ? history[len - period] : history.back();
    }
    if (model.degenerate || model.net == nullptr) return history.back();
    std::vector<double> features;
    features.reserve(static_cast<std::size_t>(kNumLags) + 1);
    for (int k = kNumLags; k >= 1; --k) {
        const auto lag = static_cast<std::size_t>(k);
        features.push_back(model.scaler.transform(
            len >= lag ? history[len - lag] : history.front()));
    }
    const auto period = static_cast<std::size_t>(windows_per_day_);
    features.push_back(model.scaler.transform(
        len >= period ? history[len - period] : history.front()));
    const double scaled = std::clamp(model.net->predict(features), -0.25, 1.25);
    return model.scaler.inverse(scaled);
}

void ServeEngine::forecast_next(int box_index) {
    BoxState& box = *boxes_[static_cast<std::size_t>(box_index)];
    std::vector<std::vector<double>> signature_values(box.signatures.size());
    for (std::size_t k = 0; k < box.signatures.size(); ++k) {
        const auto series = static_cast<std::size_t>(box.signatures[k]);
        double predicted = predict_one(box.models[k], box.history[series]);
        if (!std::isfinite(predicted)) {
            predicted = box.history[series].back();
            counter("serve.forecast.nonfinite");
        }
        signature_values[k] = {predicted};
    }
    const std::vector<std::vector<double>> full =
        box.spatial.reconstruct(signature_values);
    box.last_forecast.resize(box.history.size());
    for (std::size_t i = 0; i < box.history.size(); ++i) {
        double value = full[i][0];
        if (!std::isfinite(value)) {
            value = box.history[i].back();
            counter("serve.forecast.nonfinite");
        }
        box.last_forecast[i] = value;
    }
    box.has_forecast = true;
}

void ServeEngine::resize_window(int box_index, bool max_min_only,
                                const exec::CancellationToken* slo) {
    const auto bi = static_cast<std::size_t>(box_index);
    const BoxMeta& meta = meta_[bi];
    BoxState& box = *boxes_[bi];
    const std::size_t num_vms = meta.vm_cpu_capacity.size();
    const auto window = static_cast<std::size_t>(windows_per_day_);
    std::vector<double> rec_cpu(num_vms, 0.0);
    std::vector<double> rec_ram(num_vms, 0.0);
    for (int kind = 0; kind < 2; ++kind) {
        const bool is_cpu = kind == 0;
        resize::ResizeInput input;
        input.total_capacity = is_cpu ? meta.cpu_capacity : meta.ram_capacity;
        input.alpha = config_.pipeline.alpha;
        input.metrics = nullptr;
        input.cancel = slo;
        input.demands.resize(num_vms);
        for (std::size_t vm = 0; vm < num_vms; ++vm) {
            const std::size_t flat = vm * 2 + static_cast<std::size_t>(kind);
            input.demands[vm] = {std::max(0.0, box.last_forecast[flat])};
            const double cap =
                is_cpu ? meta.vm_cpu_capacity[vm] : meta.vm_ram_capacity[vm];
            if (config_.pipeline.epsilon_pct > 0.0) {
                input.epsilons.push_back(config_.pipeline.epsilon_pct / 100.0 *
                                         cap);
            }
            if (config_.pipeline.use_lower_bounds) {
                const std::vector<double>& history = box.history[flat];
                const std::size_t tail = std::min(window, history.size());
                double peak = 0.0;
                for (std::size_t t = history.size() - tail;
                     t < history.size(); ++t) {
                    peak = std::max(peak, history[t]);
                }
                input.lower_bounds.push_back(peak);
            }
            input.current_capacities.push_back(cap);
        }
        resize::ResizeResult result;
        if (max_min_only) {
            result = resize::max_min_fairness_resize(input);
        } else {
            bool fallback = false;
            try {
                result = resize::apply_policy(config_.policy, input);
                if (!result.feasible) fallback = true;
            } catch (const exec::OperationCancelled&) {
                throw;
            } catch (const std::exception&) {
                fallback = true;
            }
            if (fallback) {
                // Deterministic infeasibility (not an SLO trip): max-min
                // replays identically, so no journal bit is needed.
                input.cancel = nullptr;
                result = resize::max_min_fairness_resize(input);
                counter("serve.resize.fallback");
            }
        }
        for (std::size_t vm = 0; vm < num_vms; ++vm) {
            (is_cpu ? rec_cpu : rec_ram)[vm] = result.capacities[vm];
        }
    }
    box.rec_cpu = std::move(rec_cpu);
    box.rec_ram = std::move(rec_ram);
    box.has_rec = true;
}

void ServeEngine::record_retry(int attempts, int ladder) {
    const int extra = attempts - 1;
    if (extra <= 0) return;
    counter("serve.retry.attempts", static_cast<std::uint64_t>(extra));
    counter((ladder & kShedIngestOnly) != 0 ? "serve.retry.exhausted"
                                            : "serve.retry.recovered");
}

void ServeEngine::counter(const std::string& name, std::uint64_t delta) {
    metrics_.counters[name] += delta;
}

}  // namespace atm::serve
