#include "serve/protocol.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "obs/json.hpp"

namespace atm::serve {

namespace {

using obs::json::Value;

Value double_array(const std::vector<double>& values) {
    Value array = Value::make_array();
    for (const double v : values) array.array.push_back(Value::of(v));
    return array;
}

std::vector<double> double_array_from(const Value& value) {
    std::vector<double> values;
    values.reserve(value.array.size());
    for (const Value& v : value.array) values.push_back(v.as_double());
    return values;
}

}  // namespace

Request parse_request(const std::string& line) {
    const Value in = obs::json::parse(line);
    Request request;
    const std::string& type = in.at("type").as_string();
    if (type == "hello") {
        request.type = Request::Type::kHello;
        request.proto = in.at("proto").as_string();
    } else if (type == "window") {
        request.type = Request::Type::kWindow;
        request.box = in.at("box").as_string();
        request.epoch = in.at("epoch").as_u64();
        request.cpu = double_array_from(in.at("cpu"));
        request.ram = double_array_from(in.at("ram"));
    } else if (type == "stat") {
        request.type = Request::Type::kStat;
    } else if (type == "shutdown") {
        request.type = Request::Type::kShutdown;
    } else {
        throw std::runtime_error("serve protocol: unknown request type '" +
                                 type + "'");
    }
    return request;
}

std::string encode_hello() {
    Value out = Value::make_object();
    out.set("type", Value::of("hello"));
    out.set("proto", Value::of(kServeProtocol));
    return obs::json::serialize(out, 0);
}

std::string encode_window(const std::string& box, std::uint64_t epoch,
                          const std::vector<double>& cpu,
                          const std::vector<double>& ram) {
    Value out = Value::make_object();
    out.set("type", Value::of("window"));
    out.set("box", Value::of(box));
    out.set("epoch", Value::of(epoch));
    out.set("cpu", double_array(cpu));
    out.set("ram", double_array(ram));
    return obs::json::serialize(out, 0);
}

std::string encode_stat() {
    Value out = Value::make_object();
    out.set("type", Value::of("stat"));
    return obs::json::serialize(out, 0);
}

std::string encode_shutdown() {
    Value out = Value::make_object();
    out.set("type", Value::of("shutdown"));
    return obs::json::serialize(out, 0);
}

Response parse_response(const std::string& line) {
    const Value in = obs::json::parse(line);
    Response response;
    response.type = in.at("type").as_string();
    if (response.type == "hello") {
        response.proto = in.at("proto").as_string();
        response.boxes = static_cast<int>(in.at("boxes").as_int());
        response.resumed = in.at("resumed").as_bool();
    } else if (response.type == "ack") {
        response.status = in.at("status").as_string();
        response.epoch = in.at("epoch").as_u64();
        response.ladder = static_cast<int>(in.at("ladder").as_int());
        response.cpu = double_array_from(in.at("cpu"));
        response.ram = double_array_from(in.at("ram"));
        if (in.has("message")) response.message = in.at("message").as_string();
    } else if (response.type == "busy") {
        response.retry_after_ms = in.at("retry_after_ms").as_double();
    } else if (response.type == "error") {
        response.message = in.at("message").as_string();
    } else if (response.type == "stat") {
        response.metrics_json = obs::json::serialize(in.at("metrics"), 0);
    } else if (response.type != "ok") {
        throw std::runtime_error("serve protocol: unknown response type '" +
                                 response.type + "'");
    }
    return response;
}

std::string encode_hello_response(int boxes, bool resumed) {
    Value out = Value::make_object();
    out.set("type", Value::of("hello"));
    out.set("proto", Value::of(kServeProtocol));
    out.set("boxes", Value::of(static_cast<std::int64_t>(boxes)));
    out.set("resumed", Value::of(resumed));
    return obs::json::serialize(out, 0);
}

std::string encode_ack(const ApplyOutcome& outcome) {
    Value out = Value::make_object();
    out.set("type", Value::of("ack"));
    out.set("status", Value::of(to_string(outcome.status)));
    out.set("epoch", Value::of(outcome.epoch));
    out.set("ladder", Value::of(static_cast<std::int64_t>(outcome.ladder)));
    out.set("cpu", double_array(outcome.cpu));
    out.set("ram", double_array(outcome.ram));
    if (!outcome.error.empty()) out.set("message", Value::of(outcome.error));
    return obs::json::serialize(out, 0);
}

std::string encode_busy(double retry_after_ms) {
    Value out = Value::make_object();
    out.set("type", Value::of("busy"));
    out.set("retry_after_ms", Value::of(retry_after_ms));
    return obs::json::serialize(out, 0);
}

std::string encode_error(const std::string& message) {
    Value out = Value::make_object();
    out.set("type", Value::of("error"));
    out.set("message", Value::of(message));
    return obs::json::serialize(out, 0);
}

std::string encode_ok() {
    Value out = Value::make_object();
    out.set("type", Value::of("ok"));
    return obs::json::serialize(out, 0);
}

std::string encode_stat_response(const std::string& metrics_json) {
    Value out = Value::make_object();
    out.set("type", Value::of("stat"));
    out.set("metrics", obs::json::parse(metrics_json));
    return obs::json::serialize(out, 0);
}

// ---------------------------------------------------------------------------
// ServeClient

ServeClient ServeClient::connect(const std::string& socket_path,
                                 int timeout_ms) {
    ServeClient client(exec::unix_connect(socket_path, timeout_ms));
    client.hello_ = client.transact(encode_hello(), timeout_ms);
    if (client.hello_.type == "error") {
        throw std::runtime_error("serve client: handshake rejected: " +
                                 client.hello_.message);
    }
    if (client.hello_.type != "hello" ||
        client.hello_.proto != kServeProtocol) {
        throw std::runtime_error(
            "serve client: unexpected handshake response");
    }
    return client;
}

Response ServeClient::transact(const std::string& line, int timeout_ms) {
    if (!socket_.write_line(line)) {
        throw std::runtime_error("serve client: daemon closed the connection");
    }
    bool eof = false;
    const std::optional<std::string> reply = socket_.read_line(timeout_ms, &eof);
    if (!reply.has_value()) {
        throw std::runtime_error(
            eof ? "serve client: daemon closed the connection"
                : "serve client: timed out waiting for a response");
    }
    return parse_response(*reply);
}

Response ServeClient::window(const std::string& box, std::uint64_t epoch,
                             const std::vector<double>& cpu,
                             const std::vector<double>& ram, int timeout_ms) {
    return transact(encode_window(box, epoch, cpu, ram), timeout_ms);
}

Response ServeClient::window_retry(const std::string& box, std::uint64_t epoch,
                                   const std::vector<double>& cpu,
                                   const std::vector<double>& ram,
                                   int deadline_ms) {
    const std::string line = encode_window(box, epoch, cpu, ram);
    double budget_ms = static_cast<double>(deadline_ms);
    while (true) {
        const Response response =
            transact(line, std::max(1, static_cast<int>(budget_ms)));
        if (response.type != "busy") return response;
        const double wait_ms = std::max(1.0, response.retry_after_ms);
        if (wait_ms >= budget_ms) {
            throw std::runtime_error(
                "serve client: backpressure retries exhausted for box " + box +
                " epoch " + std::to_string(epoch));
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(wait_ms));
        budget_ms -= wait_ms;
    }
}

Response ServeClient::stat(int timeout_ms) {
    return transact(encode_stat(), timeout_ms);
}

Response ServeClient::shutdown(int timeout_ms) {
    return transact(encode_shutdown(), timeout_ms);
}

}  // namespace atm::serve
