#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace atm::obs::json {

/// Minimal JSON document value — enough for the metrics report schema,
/// golden files, and round-trip tests, with zero external dependencies.
/// Objects preserve insertion order so serialized reports are stable.
struct Value {
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    Value() = default;
    static Value null();
    static Value of(bool b);
    static Value of(double n);
    static Value of(std::int64_t n);
    static Value of(std::uint64_t n);
    static Value of(std::string s);
    static Value of(const char* s);
    static Value make_array();
    static Value make_object();

    /// Object field access; `set` replaces an existing key in place.
    Value& set(const std::string& key, Value value);
    [[nodiscard]] bool has(const std::string& key) const;
    /// Throws std::out_of_range when the key is absent or this is not an
    /// object.
    [[nodiscard]] const Value& at(const std::string& key) const;

    [[nodiscard]] double as_double() const;
    [[nodiscard]] std::int64_t as_int() const;
    [[nodiscard]] std::uint64_t as_u64() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] bool as_bool() const;
};

/// Parses a JSON document. Throws std::runtime_error with a byte offset
/// on malformed input. Supports the full value grammar, escape sequences
/// (including \uXXXX with surrogate pairs), and rejects trailing garbage.
Value parse(std::string_view text);

/// Serializes with `indent` spaces per level (0 = compact one-line).
/// Numbers round-trip: integral values within the exact-double range
/// print without a fraction; everything else prints with max precision.
std::string serialize(const Value& value, int indent = 2);

/// Metrics snapshot <-> JSON, the `{"counters": .., "gauges": ..,
/// "timers": .., "histograms": ..}` sub-schema of the metrics report.
Value to_json(const MetricsSnapshot& snapshot);
MetricsSnapshot snapshot_from_json(const Value& value);

}  // namespace atm::obs::json
