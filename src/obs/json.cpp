#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace atm::obs::json {

// ------------------------------------------------------------ construction

Value Value::null() { return Value{}; }

Value Value::of(bool b) {
    Value v;
    v.type = Type::kBool;
    v.boolean = b;
    return v;
}

Value Value::of(double n) {
    Value v;
    v.type = Type::kNumber;
    v.number = n;
    return v;
}

Value Value::of(std::int64_t n) { return of(static_cast<double>(n)); }
Value Value::of(std::uint64_t n) { return of(static_cast<double>(n)); }

Value Value::of(std::string s) {
    Value v;
    v.type = Type::kString;
    v.string = std::move(s);
    return v;
}

Value Value::of(const char* s) { return of(std::string(s)); }

Value Value::make_array() {
    Value v;
    v.type = Type::kArray;
    return v;
}

Value Value::make_object() {
    Value v;
    v.type = Type::kObject;
    return v;
}

Value& Value::set(const std::string& key, Value value) {
    type = Type::kObject;
    for (auto& [k, v] : object) {
        if (k == key) {
            v = std::move(value);
            return v;
        }
    }
    object.emplace_back(key, std::move(value));
    return object.back().second;
}

bool Value::has(const std::string& key) const {
    if (type != Type::kObject) return false;
    for (const auto& [k, v] : object) {
        if (k == key) return true;
    }
    return false;
}

const Value& Value::at(const std::string& key) const {
    if (type != Type::kObject) {
        throw std::out_of_range("json: at('" + key + "') on a non-object");
    }
    for (const auto& [k, v] : object) {
        if (k == key) return v;
    }
    throw std::out_of_range("json: missing key '" + key + "'");
}

double Value::as_double() const {
    if (type != Type::kNumber) throw std::runtime_error("json: not a number");
    return number;
}

std::int64_t Value::as_int() const {
    return static_cast<std::int64_t>(as_double());
}

std::uint64_t Value::as_u64() const {
    const double d = as_double();
    if (d < 0.0) throw std::runtime_error("json: negative value for u64");
    return static_cast<std::uint64_t>(d);
}

const std::string& Value::as_string() const {
    if (type != Type::kString) throw std::runtime_error("json: not a string");
    return string;
}

bool Value::as_bool() const {
    if (type != Type::kBool) throw std::runtime_error("json: not a bool");
    return boolean;
}

// ----------------------------------------------------------------- parser

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value parse_document() {
        Value v = parse_value();
        skip_whitespace();
        if (pos_ != text_.size()) fail("trailing characters after document");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw std::runtime_error("json parse error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    void skip_whitespace() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view literal) {
        if (text_.substr(pos_, literal.size()) != literal) return false;
        pos_ += literal.size();
        return true;
    }

    Value parse_value() {
        skip_whitespace();
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Value::of(parse_string());
            case 't':
                if (!consume_literal("true")) fail("bad literal");
                return Value::of(true);
            case 'f':
                if (!consume_literal("false")) fail("bad literal");
                return Value::of(false);
            case 'n':
                if (!consume_literal("null")) fail("bad literal");
                return Value::null();
            default: return parse_number();
        }
    }

    Value parse_object() {
        expect('{');
        Value v = Value::make_object();
        skip_whitespace();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skip_whitespace();
            std::string key = parse_string();
            skip_whitespace();
            expect(':');
            v.object.emplace_back(std::move(key), parse_value());
            skip_whitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value parse_array() {
        expect('[');
        Value v = Value::make_array();
        skip_whitespace();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.array.push_back(parse_value());
            skip_whitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    void append_utf8(std::string& out, unsigned codepoint) {
        if (codepoint < 0x80) {
            out.push_back(static_cast<char>(codepoint));
        } else if (codepoint < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (codepoint >> 6)));
            out.push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
        } else if (codepoint < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (codepoint >> 12)));
            out.push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (codepoint >> 18)));
            out.push_back(static_cast<char>(0x80 | ((codepoint >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
        }
    }

    unsigned parse_hex4() {
        unsigned value = 0;
        for (int k = 0; k < 4; ++k) {
            const char c = peek();
            ++pos_;
            value <<= 4;
            if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
            else fail("bad \\u escape");
        }
        return value;
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    unsigned code = parse_hex4();
                    if (code >= 0xD800 && code <= 0xDBFF) {
                        // High surrogate: a low surrogate must follow.
                        if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                            text_[pos_ + 1] != 'u') {
                            fail("lone high surrogate");
                        }
                        pos_ += 2;
                        const unsigned low = parse_hex4();
                        if (low < 0xDC00 || low > 0xDFFF) fail("bad surrogate pair");
                        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                    }
                    append_utf8(out, code);
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    Value parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
                text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) fail("expected a value");
        const std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) fail("bad number '" + token + "'");
        return Value::of(value);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

// -------------------------------------------------------------- serializer

void append_escaped(std::string& out, const std::string& s) {
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
}

void append_number(std::string& out, double value) {
    if (!std::isfinite(value)) {
        // JSON has no inf/nan; clamp to null (metrics never emit these,
        // but a report must never be unparseable).
        out += "null";
        return;
    }
    char buf[40];
    constexpr double kExactIntLimit = 9.007199254740992e15;  // 2^53
    if (value == std::floor(value) && std::fabs(value) < kExactIntLimit) {
        std::snprintf(buf, sizeof(buf), "%.0f", value);
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", value);
    }
    out += buf;
}

void serialize_into(const Value& value, int indent, int depth, std::string& out) {
    const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
    const std::string close_pad(static_cast<std::size_t>(indent * depth), ' ');
    const char* newline = indent > 0 ? "\n" : "";
    switch (value.type) {
        case Value::Type::kNull: out += "null"; break;
        case Value::Type::kBool: out += value.boolean ? "true" : "false"; break;
        case Value::Type::kNumber: append_number(out, value.number); break;
        case Value::Type::kString: append_escaped(out, value.string); break;
        case Value::Type::kArray: {
            if (value.array.empty()) {
                out += "[]";
                break;
            }
            out += "[";
            out += newline;
            for (std::size_t i = 0; i < value.array.size(); ++i) {
                out += pad;
                serialize_into(value.array[i], indent, depth + 1, out);
                if (i + 1 < value.array.size()) out += ",";
                out += newline;
            }
            out += close_pad;
            out += "]";
            break;
        }
        case Value::Type::kObject: {
            if (value.object.empty()) {
                out += "{}";
                break;
            }
            out += "{";
            out += newline;
            for (std::size_t i = 0; i < value.object.size(); ++i) {
                out += pad;
                append_escaped(out, value.object[i].first);
                out += indent > 0 ? ": " : ":";
                serialize_into(value.object[i].second, indent, depth + 1, out);
                if (i + 1 < value.object.size()) out += ",";
                out += newline;
            }
            out += close_pad;
            out += "}";
            break;
        }
    }
}

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string serialize(const Value& value, int indent) {
    std::string out;
    serialize_into(value, indent, 0, out);
    if (indent > 0) out += "\n";
    return out;
}

// ----------------------------------------------------- snapshot <-> JSON

Value to_json(const MetricsSnapshot& snapshot) {
    Value root = Value::make_object();

    Value counters = Value::make_object();
    for (const auto& [name, value] : snapshot.counters) {
        counters.set(name, Value::of(value));
    }
    root.set("counters", std::move(counters));

    Value gauges = Value::make_object();
    for (const auto& [name, value] : snapshot.gauges) {
        gauges.set(name, Value::of(value));
    }
    root.set("gauges", std::move(gauges));

    Value timers = Value::make_object();
    for (const auto& [name, stat] : snapshot.timers) {
        Value t = Value::make_object();
        t.set("count", Value::of(stat.count));
        t.set("total_ns", Value::of(stat.total_ns));
        t.set("min_ns", Value::of(stat.min_ns));
        t.set("max_ns", Value::of(stat.max_ns));
        timers.set(name, std::move(t));
    }
    root.set("timers", std::move(timers));

    Value histograms = Value::make_object();
    for (const auto& [name, hist] : snapshot.histograms) {
        Value h = Value::make_object();
        Value bounds = Value::make_array();
        for (const double b : hist.bounds) bounds.array.push_back(Value::of(b));
        Value counts = Value::make_array();
        for (const std::uint64_t c : hist.counts) {
            counts.array.push_back(Value::of(c));
        }
        h.set("bounds", std::move(bounds));
        h.set("counts", std::move(counts));
        h.set("count", Value::of(hist.count));
        h.set("sum", Value::of(hist.sum));
        h.set("min", Value::of(hist.min));
        h.set("max", Value::of(hist.max));
        histograms.set(name, std::move(h));
    }
    root.set("histograms", std::move(histograms));
    return root;
}

MetricsSnapshot snapshot_from_json(const Value& value) {
    MetricsSnapshot out;
    if (value.has("counters")) {
        for (const auto& [name, v] : value.at("counters").object) {
            out.counters[name] = v.as_u64();
        }
    }
    if (value.has("gauges")) {
        for (const auto& [name, v] : value.at("gauges").object) {
            out.gauges[name] = v.as_double();
        }
    }
    if (value.has("timers")) {
        for (const auto& [name, v] : value.at("timers").object) {
            TimerStat stat;
            stat.count = v.at("count").as_u64();
            stat.total_ns = v.at("total_ns").as_u64();
            stat.min_ns = v.at("min_ns").as_u64();
            stat.max_ns = v.at("max_ns").as_u64();
            out.timers[name] = stat;
        }
    }
    if (value.has("histograms")) {
        for (const auto& [name, v] : value.at("histograms").object) {
            HistogramSnapshot hist;
            for (const Value& b : v.at("bounds").array) {
                hist.bounds.push_back(b.as_double());
            }
            for (const Value& c : v.at("counts").array) {
                hist.counts.push_back(c.as_u64());
            }
            hist.count = v.at("count").as_u64();
            hist.sum = v.at("sum").as_double();
            hist.min = v.at("min").as_double();
            hist.max = v.at("max").as_double();
            out.histograms[name] = std::move(hist);
        }
    }
    return out;
}

}  // namespace atm::obs::json
