#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace atm::obs {

/// Aggregate of ScopedTimer durations under one name. All fields are
/// integers, so merging shards (or per-box snapshots) is exact and
/// order-independent — but the *values* depend on machine load, which is
/// why timers are excluded from the determinism contract (DESIGN.md).
struct TimerStat {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;

    void record(std::uint64_t ns);
    void merge(const TimerStat& other);
    [[nodiscard]] double total_seconds() const {
        return static_cast<double>(total_ns) * 1e-9;
    }
};

/// Fixed-bucket histogram: `bounds` are ascending upper bucket edges;
/// `counts` has bounds.size() + 1 entries (the last bucket is open to
/// +infinity). Two histograms under the same name must share bounds, which
/// makes merging a plain element-wise sum — the property that lets
/// per-thread shards and per-box snapshots combine into a fleet view.
struct HistogramSnapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    void record(double value);
    /// Throws std::invalid_argument on bucket-bound mismatch.
    void merge(const HistogramSnapshot& other);
    /// Quantile estimate for p in [0, 1] by linear interpolation inside
    /// the covering bucket, clamped to the observed [min, max]. Returns 0
    /// for an empty histogram.
    [[nodiscard]] double percentile(double p) const;
    [[nodiscard]] double mean() const {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
};

/// Point-in-time view of a registry (or a merge of several): plain maps,
/// ordered by name so serialization is deterministic.
struct MetricsSnapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, TimerStat> timers;
    std::map<std::string, HistogramSnapshot> histograms;

    /// Counters and timers add; histograms bucket-sum; gauges take the
    /// other side's value (callers merge in a deterministic order).
    void merge(const MetricsSnapshot& other);
    [[nodiscard]] bool empty() const {
        return counters.empty() && gauges.empty() && timers.empty() &&
               histograms.empty();
    }
    /// Counter value, 0 when absent (test/report convenience).
    [[nodiscard]] std::uint64_t counter(const std::string& name) const;
};

/// Default histogram bucket edges: a 1-2-5 grid from 1e-3 to 100,
/// suitable for the ratios (APE) and seconds the pipeline observes.
std::span<const double> default_histogram_bounds();

/// Thread-safe metrics registry with per-thread shards.
///
/// Every writing thread gets its own shard (found via a thread-local
/// cache), so concurrent instrumentation — e.g. DTW rows recording cell
/// counts from several pool workers — never contends on a shared cell.
/// Each shard carries its own mutex, taken uncontended on the hot path
/// and only fought over during `snapshot()`, which locks shard by shard
/// and merges. This keeps the registry race-free under the exec
/// ThreadPool without atomics in every metric.
///
/// When disabled (constructor flag or `set_enabled(false)`) every record
/// operation returns after one relaxed atomic load — near-zero overhead —
/// and a null `MetricsRegistry*` at an instrumentation site costs a
/// pointer test only.
///
/// Determinism: counter merges are exact integer sums, so deterministic
/// instrumentation (cell counts, cache hits, iterations) is bit-identical
/// regardless of worker count or shard merge order. Gauges and histogram
/// `sum` are only deterministic when written from a single thread per
/// registry — the convention all pipeline instrumentation follows (worker
/// threads write counters only).
class MetricsRegistry {
public:
    explicit MetricsRegistry(bool enabled = true);
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    void set_enabled(bool enabled) {
        enabled_.store(enabled, std::memory_order_relaxed);
    }
    [[nodiscard]] bool enabled() const {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Adds `delta` to the named monotonic counter.
    void add(std::string_view name, std::uint64_t delta = 1);
    /// Sets the named gauge to `value` (last write wins).
    void set_gauge(std::string_view name, double value);
    /// Records one observation into the named histogram. `bounds` is used
    /// only when this thread's shard first creates the histogram; empty
    /// selects `default_histogram_bounds()`. All observers of one name
    /// must use the same bounds.
    void observe(std::string_view name, double value,
                 std::span<const double> bounds = {});
    /// Records one duration into the named timer aggregate.
    void record_ns(std::string_view name, std::uint64_t ns);

    /// Merges every shard into one snapshot. Safe to call while other
    /// threads are still recording (they hold their shard mutex per op);
    /// for a quiescent-point snapshot, call after joining/fencing writers.
    [[nodiscard]] MetricsSnapshot snapshot() const;

    /// Clears every shard (the shards themselves stay registered).
    void reset();

private:
    struct Shard;
    Shard* local_shard();

    const std::uint64_t id_;  ///< process-unique, keys the TLS shard cache
    std::atomic<bool> enabled_;
    mutable std::mutex shards_mutex_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

/// RAII span timer: records the elapsed wall time into
/// `registry->record_ns(name)` on destruction (or an explicit `stop()`).
/// A null or disabled registry makes construction and destruction no-ops
/// (no clock reads).
class ScopedTimer {
public:
    ScopedTimer(MetricsRegistry* registry, std::string name);
    ~ScopedTimer() { stop(); }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    /// Records now instead of at scope exit; further calls are no-ops.
    void stop();

private:
    MetricsRegistry* registry_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
    bool armed_;
};

/// Named-handle sugar over a registry. Handles are cheap to construct,
/// copyable, and tolerate a null registry (every call becomes a no-op),
/// so instrumented code reads declaratively without null checks.
class Counter {
public:
    Counter(MetricsRegistry* registry, std::string name)
        : registry_(registry), name_(std::move(name)) {}
    void add(std::uint64_t delta = 1) const {
        if (registry_ != nullptr) registry_->add(name_, delta);
    }

private:
    MetricsRegistry* registry_;
    std::string name_;
};

class Gauge {
public:
    Gauge(MetricsRegistry* registry, std::string name)
        : registry_(registry), name_(std::move(name)) {}
    void set(double value) const {
        if (registry_ != nullptr) registry_->set_gauge(name_, value);
    }

private:
    MetricsRegistry* registry_;
    std::string name_;
};

class Histogram {
public:
    Histogram(MetricsRegistry* registry, std::string name,
              std::span<const double> bounds = {})
        : registry_(registry), name_(std::move(name)),
          bounds_(bounds.begin(), bounds.end()) {}
    void observe(double value) const {
        if (registry_ != nullptr) registry_->observe(name_, value, bounds_);
    }

private:
    MetricsRegistry* registry_;
    std::string name_;
    std::vector<double> bounds_;
};

}  // namespace atm::obs
