#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <unordered_map>

namespace atm::obs {

// ------------------------------------------------------------- TimerStat

void TimerStat::record(std::uint64_t ns) {
    if (count == 0) {
        min_ns = ns;
        max_ns = ns;
    } else {
        min_ns = std::min(min_ns, ns);
        max_ns = std::max(max_ns, ns);
    }
    ++count;
    total_ns += ns;
}

void TimerStat::merge(const TimerStat& other) {
    if (other.count == 0) return;
    if (count == 0) {
        *this = other;
        return;
    }
    min_ns = std::min(min_ns, other.min_ns);
    max_ns = std::max(max_ns, other.max_ns);
    count += other.count;
    total_ns += other.total_ns;
}

// ----------------------------------------------------- HistogramSnapshot

void HistogramSnapshot::record(double value) {
    if (counts.size() != bounds.size() + 1) counts.assign(bounds.size() + 1, 0);
    const auto bucket = static_cast<std::size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
    ++counts[bucket];
    if (count == 0) {
        min = value;
        max = value;
    } else {
        min = std::min(min, value);
        max = std::max(max, value);
    }
    ++count;
    sum += value;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
    if (!bounds.empty() && !other.bounds.empty() && bounds != other.bounds) {
        throw std::invalid_argument(
            "HistogramSnapshot::merge: bucket bounds differ");
    }
    if (other.count == 0) return;
    if (count == 0) {
        *this = other;
        return;
    }
    for (std::size_t k = 0; k < counts.size(); ++k) counts[k] += other.counts[k];
    min = std::min(min, other.min);
    max = std::max(max, other.max);
    count += other.count;
    sum += other.sum;
}

double HistogramSnapshot::percentile(double p) const {
    if (count == 0) return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * static_cast<double>(count);
    std::uint64_t cumulative = 0;
    for (std::size_t k = 0; k < counts.size(); ++k) {
        if (counts[k] == 0) continue;
        const double before = static_cast<double>(cumulative);
        cumulative += counts[k];
        if (static_cast<double>(cumulative) < target) continue;
        // Interpolate inside bucket k, clamped to the observed range (the
        // first/last buckets have no finite edge of their own).
        double lo = k == 0 ? min : bounds[k - 1];
        double hi = k < bounds.size() ? bounds[k] : max;
        lo = std::max(lo, min);
        hi = std::min(hi, max);
        if (hi < lo) hi = lo;
        const double frac =
            counts[k] == 0 ? 0.0
                           : (target - before) / static_cast<double>(counts[k]);
        return lo + frac * (hi - lo);
    }
    return max;
}

// ------------------------------------------------------- MetricsSnapshot

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
    for (const auto& [name, value] : other.counters) counters[name] += value;
    for (const auto& [name, value] : other.gauges) gauges[name] = value;
    for (const auto& [name, stat] : other.timers) timers[name].merge(stat);
    for (const auto& [name, hist] : other.histograms) {
        histograms[name].merge(hist);
    }
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

std::span<const double> default_histogram_bounds() {
    static const std::vector<double> kBounds{
        1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1, 0.2, 0.5,
        1.0,  2.0,  5.0,  10.0, 20.0, 50.0, 100.0};
    return kBounds;
}

// ------------------------------------------------------- MetricsRegistry

struct MetricsRegistry::Shard {
    std::thread::id owner;
    std::mutex mutex;
    std::unordered_map<std::string, std::uint64_t> counters;
    std::unordered_map<std::string, double> gauges;
    std::unordered_map<std::string, TimerStat> timers;
    std::unordered_map<std::string, HistogramSnapshot> histograms;
};

namespace {

std::uint64_t next_registry_id() {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

/// One-entry per-thread cache of the shard this thread last used. Keyed
/// by the registry's process-unique id, never by address, so a registry
/// destroyed and another allocated at the same address cannot alias — a
/// stale entry just misses and re-resolves under the registry mutex.
struct TlsShardCache {
    std::uint64_t registry_id = 0;
    void* shard = nullptr;
};
thread_local TlsShardCache tls_shard_cache;

}  // namespace

MetricsRegistry::MetricsRegistry(bool enabled)
    : id_(next_registry_id()), enabled_(enabled) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard* MetricsRegistry::local_shard() {
    if (tls_shard_cache.registry_id == id_) {
        return static_cast<Shard*>(tls_shard_cache.shard);
    }
    const std::thread::id me = std::this_thread::get_id();
    std::lock_guard<std::mutex> lock(shards_mutex_);
    Shard* shard = nullptr;
    for (const auto& candidate : shards_) {
        if (candidate->owner == me) {
            shard = candidate.get();
            break;
        }
    }
    if (shard == nullptr) {
        shards_.push_back(std::make_unique<Shard>());
        shard = shards_.back().get();
        shard->owner = me;
    }
    tls_shard_cache = {id_, shard};
    return shard;
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
    if (!enabled()) return;
    Shard* shard = local_shard();
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->counters[std::string(name)] += delta;
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
    if (!enabled()) return;
    Shard* shard = local_shard();
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->gauges[std::string(name)] = value;
}

void MetricsRegistry::observe(std::string_view name, double value,
                              std::span<const double> bounds) {
    if (!enabled()) return;
    Shard* shard = local_shard();
    std::lock_guard<std::mutex> lock(shard->mutex);
    auto [it, inserted] = shard->histograms.try_emplace(std::string(name));
    if (inserted) {
        const std::span<const double> chosen =
            bounds.empty() ? default_histogram_bounds() : bounds;
        it->second.bounds.assign(chosen.begin(), chosen.end());
        it->second.counts.assign(it->second.bounds.size() + 1, 0);
    }
    it->second.record(value);
}

void MetricsRegistry::record_ns(std::string_view name, std::uint64_t ns) {
    if (!enabled()) return;
    Shard* shard = local_shard();
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->timers[std::string(name)].record(ns);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    MetricsSnapshot out;
    std::lock_guard<std::mutex> registry_lock(shards_mutex_);
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> shard_lock(shard->mutex);
        for (const auto& [name, value] : shard->counters) {
            out.counters[name] += value;
        }
        for (const auto& [name, value] : shard->gauges) out.gauges[name] = value;
        for (const auto& [name, stat] : shard->timers) {
            out.timers[name].merge(stat);
        }
        for (const auto& [name, hist] : shard->histograms) {
            out.histograms[name].merge(hist);
        }
    }
    return out;
}

void MetricsRegistry::reset() {
    std::lock_guard<std::mutex> registry_lock(shards_mutex_);
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> shard_lock(shard->mutex);
        shard->counters.clear();
        shard->gauges.clear();
        shard->timers.clear();
        shard->histograms.clear();
    }
}

// ----------------------------------------------------------- ScopedTimer

ScopedTimer::ScopedTimer(MetricsRegistry* registry, std::string name)
    : registry_(registry), name_(std::move(name)),
      armed_(registry != nullptr && registry->enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
}

void ScopedTimer::stop() {
    if (!armed_) return;
    armed_ = false;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    registry_->record_ns(
        name_, static_cast<std::uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                       .count()));
}

}  // namespace atm::obs
