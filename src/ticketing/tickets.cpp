#include "ticketing/tickets.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace atm::ticketing {

int count_usage_tickets(std::span<const double> usage_pct, double threshold_pct) {
    int count = 0;
    for (double u : usage_pct) {
        if (u > threshold_pct) ++count;
    }
    return count;
}

int count_demand_tickets(std::span<const double> demand, double capacity,
                         double alpha) {
    const double limit = alpha * capacity;
    int count = 0;
    for (double d : demand) {
        if (d > limit) ++count;
    }
    return count;
}

std::vector<int> ticket_indicators(std::span<const double> demand,
                                   double capacity, double alpha) {
    const double limit = alpha * capacity;
    std::vector<int> out(demand.size());
    for (std::size_t t = 0; t < demand.size(); ++t) out[t] = demand[t] > limit ? 1 : 0;
    return out;
}

BoxTicketStats count_box_tickets(const trace::BoxTrace& box, double threshold_pct,
                                 std::size_t first_window, long num_windows) {
    BoxTicketStats stats;
    stats.cpu_tickets_per_vm.reserve(box.vms.size());
    stats.ram_tickets_per_vm.reserve(box.vms.size());
    for (const trace::VmTrace& vm : box.vms) {
        const std::size_t len = vm.cpu_usage_pct.size();
        const std::size_t first = std::min(first_window, len);
        const std::size_t count =
            num_windows < 0 ? len - first
                            : std::min(static_cast<std::size_t>(num_windows), len - first);
        const int cpu = count_usage_tickets(
            vm.cpu_usage_pct.view().subspan(first, count), threshold_pct);
        const int ram = count_usage_tickets(
            vm.ram_usage_pct.view().subspan(first, count), threshold_pct);
        stats.cpu_tickets_per_vm.push_back(cpu);
        stats.ram_tickets_per_vm.push_back(ram);
        stats.total_cpu += cpu;
        stats.total_ram += ram;
    }
    return stats;
}

int culprit_vm_count(const BoxTicketStats& stats, ts::ResourceKind kind,
                     double majority_fraction) {
    const std::vector<int>& per_vm = kind == ts::ResourceKind::kCpu
                                         ? stats.cpu_tickets_per_vm
                                         : stats.ram_tickets_per_vm;
    const int total = stats.total(kind);
    if (total == 0) return 0;
    std::vector<int> sorted = per_vm;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    const double target = majority_fraction * total;
    int covered = 0;
    int culprits = 0;
    for (int t : sorted) {
        if (static_cast<double>(covered) >= target) break;
        covered += t;
        ++culprits;
    }
    return culprits;
}

}  // namespace atm::ticketing
