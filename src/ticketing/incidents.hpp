#pragma once

#include <span>
#include <vector>

namespace atm::ticketing {

/// A contiguous run of ticketing windows — what an operator experiences as
/// one *incident* (monitoring systems typically dedupe per-window alerts
/// into an open incident until usage recovers).
struct Incident {
    std::size_t first_window = 0;
    std::size_t length = 0;  ///< in ticketing windows
};

/// Extracts incidents from a usage series at a threshold: maximal runs of
/// windows with usage > threshold. Two runs separated by fewer than
/// `merge_gap` quiet windows are merged (brief dips below the threshold
/// do not close a real incident).
std::vector<Incident> extract_incidents(std::span<const double> usage_pct,
                                        double threshold_pct,
                                        std::size_t merge_gap = 1);

/// Incident-level summary of a series at a threshold.
struct IncidentStats {
    int count = 0;
    double mean_duration = 0.0;    ///< windows
    std::size_t longest = 0;       ///< windows
    int total_windows = 0;         ///< sum of incident lengths
};
IncidentStats summarize_incidents(std::span<const double> usage_pct,
                                  double threshold_pct,
                                  std::size_t merge_gap = 1);

}  // namespace atm::ticketing
