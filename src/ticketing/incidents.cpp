#include "ticketing/incidents.hpp"

#include <algorithm>

namespace atm::ticketing {

std::vector<Incident> extract_incidents(std::span<const double> usage_pct,
                                        double threshold_pct,
                                        std::size_t merge_gap) {
    std::vector<Incident> raw;
    std::size_t start = 0;
    std::size_t len = 0;
    for (std::size_t t = 0; t <= usage_pct.size(); ++t) {
        const bool violating = t < usage_pct.size() && usage_pct[t] > threshold_pct;
        if (violating) {
            if (len == 0) start = t;
            ++len;
        } else if (len > 0) {
            raw.push_back(Incident{start, len});
            len = 0;
        }
    }

    // Merge runs separated by short quiet gaps.
    std::vector<Incident> merged;
    for (const Incident& inc : raw) {
        if (!merged.empty()) {
            Incident& prev = merged.back();
            const std::size_t prev_end = prev.first_window + prev.length;
            if (inc.first_window - prev_end <= merge_gap) {
                prev.length = inc.first_window + inc.length - prev.first_window;
                continue;
            }
        }
        merged.push_back(inc);
    }
    return merged;
}

IncidentStats summarize_incidents(std::span<const double> usage_pct,
                                  double threshold_pct,
                                  std::size_t merge_gap) {
    const std::vector<Incident> incidents =
        extract_incidents(usage_pct, threshold_pct, merge_gap);
    IncidentStats stats;
    stats.count = static_cast<int>(incidents.size());
    for (const Incident& inc : incidents) {
        stats.total_windows += static_cast<int>(inc.length);
        stats.longest = std::max(stats.longest, inc.length);
    }
    if (stats.count > 0) {
        stats.mean_duration =
            static_cast<double>(stats.total_windows) / stats.count;
    }
    return stats;
}

}  // namespace atm::ticketing
