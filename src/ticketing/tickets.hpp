#pragma once

#include <span>
#include <vector>

#include "timeseries/resource.hpp"
#include "tracegen/trace.hpp"

namespace atm::ticketing {

/// Counts usage tickets in a utilization series (percent, 0..100): one
/// ticket per ticketing window whose utilization strictly exceeds
/// `threshold_pct` (the paper's monitoring rule, Section II-A: "usage
/// tickets are generated when utilization values exceed target
/// thresholds").
int count_usage_tickets(std::span<const double> usage_pct, double threshold_pct);

/// Counts tickets for a *demand* series (GHz/GB) against an allocated
/// capacity: a window tickets when demand > alpha * capacity, i.e. when
/// utilization of the allocation exceeds alpha (Section IV constraint 6).
int count_demand_tickets(std::span<const double> demand, double capacity,
                         double alpha);

/// Ticket-window indicator vector for a demand series (1 = ticket), the
/// I_{i,t} variables of the optimization formulation.
std::vector<int> ticket_indicators(std::span<const double> demand,
                                   double capacity, double alpha);

/// Per-VM ticket counts of one box at one threshold.
struct BoxTicketStats {
    std::vector<int> cpu_tickets_per_vm;
    std::vector<int> ram_tickets_per_vm;
    int total_cpu = 0;
    int total_ram = 0;

    [[nodiscard]] int total(ts::ResourceKind kind) const {
        return kind == ts::ResourceKind::kCpu ? total_cpu : total_ram;
    }
};

/// Counts tickets for every VM of a box over a window range
/// [first_window, first_window + num_windows); num_windows < 0 means "to
/// the end of the trace".
BoxTicketStats count_box_tickets(const trace::BoxTrace& box, double threshold_pct,
                                 std::size_t first_window = 0,
                                 long num_windows = -1);

/// Smallest number of VMs that together account for at least
/// `majority_fraction` of a box's tickets for the given resource — the
/// paper's "culprit VM" metric (Fig. 2c, majority = 80%). Zero when the
/// box has no tickets.
int culprit_vm_count(const BoxTicketStats& stats, ts::ResourceKind kind,
                     double majority_fraction = 0.8);

}  // namespace atm::ticketing
