#pragma once

#include <vector>

#include "timeseries/resource.hpp"
#include "tracegen/trace.hpp"

namespace atm::ticketing {

/// Population-level ticket statistics at one threshold — the data behind
/// Fig. 2 of the paper (computed over one day of the trace).
struct ThresholdCharacterization {
    double threshold_pct = 0.0;
    /// Fig. 2a: fraction of boxes with at least one ticket, per resource.
    double boxes_with_cpu_tickets = 0.0;
    double boxes_with_ram_tickets = 0.0;
    /// Fig. 2b: mean and stddev of tickets per box, per resource.
    double mean_cpu_tickets_per_box = 0.0;
    double std_cpu_tickets_per_box = 0.0;
    double mean_ram_tickets_per_box = 0.0;
    double std_ram_tickets_per_box = 0.0;
    /// Fig. 2c: mean number of culprit VMs (covering 80% of tickets) over
    /// boxes that have tickets, per resource.
    double mean_cpu_culprits = 0.0;
    double mean_ram_culprits = 0.0;
};

/// Computes the Fig. 2 characterization for one day of the trace
/// ([day * windows_per_day, (day+1) * windows_per_day)) at one threshold.
ThresholdCharacterization characterize_tickets(const trace::Trace& trace,
                                               double threshold_pct,
                                               int day = 0);

/// The four spatial-correlation classes of Section II-B / Fig. 3.
struct CorrelationCharacterization {
    /// Per-box *median* correlation coefficient of each class; one entry
    /// per box that has at least one pair in the class. CDFs over these
    /// vectors regenerate Fig. 3.
    std::vector<double> intra_cpu;    ///< pairs of CPU series
    std::vector<double> intra_ram;    ///< pairs of RAM series
    std::vector<double> inter_all;    ///< any CPU x RAM pair (incl. same VM)
    std::vector<double> inter_pair;   ///< CPU x RAM of the same VM
};

/// Computes per-box median Pearson correlations for the four classes over
/// one day of the trace (Fig. 3 uses the April 3 day).
CorrelationCharacterization characterize_correlations(const trace::Trace& trace,
                                                      int day = 0);

}  // namespace atm::ticketing
