#include "ticketing/characterization.hpp"

#include <cmath>

#include "ticketing/tickets.hpp"
#include "timeseries/stats.hpp"

namespace atm::ticketing {
namespace {

/// One day's slice [day*wpd, (day+1)*wpd) of a series, clamped.
std::span<const double> day_slice(const ts::Series& s, int day, int wpd) {
    const auto first = static_cast<std::size_t>(day) * static_cast<std::size_t>(wpd);
    if (first >= s.size()) return {};
    const std::size_t count = std::min(static_cast<std::size_t>(wpd), s.size() - first);
    return s.view().subspan(first, count);
}

}  // namespace

ThresholdCharacterization characterize_tickets(const trace::Trace& trace,
                                               double threshold_pct, int day) {
    ThresholdCharacterization out;
    out.threshold_pct = threshold_pct;
    const int wpd = trace.windows_per_day;

    std::vector<double> cpu_per_box;
    std::vector<double> ram_per_box;
    std::vector<double> cpu_culprits;
    std::vector<double> ram_culprits;
    int boxes_cpu = 0;
    int boxes_ram = 0;

    for (const trace::BoxTrace& box : trace.boxes) {
        const BoxTicketStats stats = count_box_tickets(
            box, threshold_pct,
            static_cast<std::size_t>(day) * static_cast<std::size_t>(wpd), wpd);
        cpu_per_box.push_back(stats.total_cpu);
        ram_per_box.push_back(stats.total_ram);
        if (stats.total_cpu > 0) {
            ++boxes_cpu;
            cpu_culprits.push_back(culprit_vm_count(stats, ts::ResourceKind::kCpu));
        }
        if (stats.total_ram > 0) {
            ++boxes_ram;
            ram_culprits.push_back(culprit_vm_count(stats, ts::ResourceKind::kRam));
        }
    }

    const double num_boxes = static_cast<double>(trace.boxes.size());
    if (num_boxes > 0) {
        out.boxes_with_cpu_tickets = boxes_cpu / num_boxes;
        out.boxes_with_ram_tickets = boxes_ram / num_boxes;
    }
    out.mean_cpu_tickets_per_box = ts::mean(cpu_per_box);
    out.std_cpu_tickets_per_box = ts::stddev(cpu_per_box);
    out.mean_ram_tickets_per_box = ts::mean(ram_per_box);
    out.std_ram_tickets_per_box = ts::stddev(ram_per_box);
    out.mean_cpu_culprits = ts::mean(cpu_culprits);
    out.mean_ram_culprits = ts::mean(ram_culprits);
    return out;
}

CorrelationCharacterization characterize_correlations(const trace::Trace& trace,
                                                      int day) {
    CorrelationCharacterization out;
    const int wpd = trace.windows_per_day;

    for (const trace::BoxTrace& box : trace.boxes) {
        const std::size_t m = box.vms.size();
        std::vector<std::span<const double>> cpu(m);
        std::vector<std::span<const double>> ram(m);
        for (std::size_t i = 0; i < m; ++i) {
            cpu[i] = day_slice(box.vms[i].cpu_usage_pct, day, wpd);
            ram[i] = day_slice(box.vms[i].ram_usage_pct, day, wpd);
        }
        if (m == 0 || cpu.front().empty()) continue;

        std::vector<double> intra_cpu;
        std::vector<double> intra_ram;
        std::vector<double> inter_all;
        std::vector<double> inter_pair;
        for (std::size_t i = 0; i < m; ++i) {
            for (std::size_t j = i + 1; j < m; ++j) {
                intra_cpu.push_back(ts::pearson(cpu[i], cpu[j]));
                intra_ram.push_back(ts::pearson(ram[i], ram[j]));
            }
            for (std::size_t j = 0; j < m; ++j) {
                inter_all.push_back(ts::pearson(cpu[i], ram[j]));
            }
            inter_pair.push_back(ts::pearson(cpu[i], ram[i]));
        }
        if (!intra_cpu.empty()) out.intra_cpu.push_back(ts::median(intra_cpu));
        if (!intra_ram.empty()) out.intra_ram.push_back(ts::median(intra_ram));
        if (!inter_all.empty()) out.inter_all.push_back(ts::median(inter_all));
        if (!inter_pair.empty()) out.inter_pair.push_back(ts::median(inter_pair));
    }
    return out;
}

}  // namespace atm::ticketing
