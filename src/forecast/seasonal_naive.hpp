#pragma once

#include <vector>

#include "forecast/forecaster.hpp"

namespace atm::forecast {

/// Seasonal-naive forecaster: the prediction for window t is the observed
/// value one season (period) earlier; histories shorter than one season
/// fall back to repeating the last observation.
///
/// This is the cheapest sane baseline for strongly diurnal data-center
/// series and serves as the floor in the forecaster ablation bench.
class SeasonalNaiveForecaster final : public Forecaster {
  public:
    /// `period` is the season length in samples (e.g. 96 = one day of
    /// 15-minute windows). Must be >= 1.
    explicit SeasonalNaiveForecaster(int period);

    void fit(std::span<const double> history) override;
    [[nodiscard]] std::vector<double> forecast(int horizon) const override;
    [[nodiscard]] std::string name() const override { return "seasonal-naive"; }

  private:
    int period_;
    std::vector<double> history_;
};

}  // namespace atm::forecast
