#include "forecast/forecaster.hpp"

#include <stdexcept>

#include "forecast/ar.hpp"
#include "forecast/holt_winters.hpp"
#include "forecast/mlp_forecaster.hpp"
#include "forecast/seasonal_naive.hpp"

namespace atm::forecast {

std::unique_ptr<Forecaster> make_forecaster(TemporalModel model,
                                            int seasonal_period, unsigned seed,
                                            obs::MetricsRegistry* metrics,
                                            const exec::CancellationToken* cancel,
                                            MlpWorkspace* mlp_workspace) {
    switch (model) {
        case TemporalModel::kSeasonalNaive:
            return std::make_unique<SeasonalNaiveForecaster>(
                seasonal_period > 0 ? seasonal_period : 1);
        case TemporalModel::kAutoregressive:
            return std::make_unique<ArForecaster>(/*order=*/6, seasonal_period);
        case TemporalModel::kNeuralNetwork: {
            MlpForecasterOptions options;
            options.seasonal_period = seasonal_period;
            options.train.seed = seed;
            options.train.metrics = metrics;
            options.train.cancel = cancel;
            options.workspace = mlp_workspace;
            return std::make_unique<MlpForecaster>(options);
        }
        case TemporalModel::kHoltWinters:
            return std::make_unique<HoltWintersForecaster>(
                seasonal_period > 1 ? seasonal_period : 2);
        case TemporalModel::kEnsemble: {
            std::vector<std::unique_ptr<Forecaster>> members;
            members.push_back(make_forecaster(TemporalModel::kAutoregressive,
                                              seasonal_period, seed, metrics,
                                              cancel, mlp_workspace));
            members.push_back(make_forecaster(TemporalModel::kHoltWinters,
                                              seasonal_period, seed, metrics,
                                              cancel, mlp_workspace));
            members.push_back(make_forecaster(TemporalModel::kNeuralNetwork,
                                              seasonal_period, seed, metrics,
                                              cancel, mlp_workspace));
            return std::make_unique<EnsembleForecaster>(std::move(members));
        }
    }
    throw std::invalid_argument("make_forecaster: unknown model");
}

std::string to_string(TemporalModel model) {
    switch (model) {
        case TemporalModel::kSeasonalNaive: return "seasonal-naive";
        case TemporalModel::kAutoregressive: return "ar";
        case TemporalModel::kNeuralNetwork: return "mlp";
        case TemporalModel::kHoltWinters: return "holt-winters";
        case TemporalModel::kEnsemble: return "ensemble";
    }
    return "unknown";
}

}  // namespace atm::forecast
