#pragma once

#include <cstddef>
#include <random>
#include <span>
#include <vector>

#include "exec/arena.hpp"
#include "linalg/flat_matrix.hpp"

namespace atm::exec {
class CancellationToken;
}
namespace atm::obs {
class MetricsRegistry;
}

namespace atm::forecast {

/// Activation function for hidden layers of the MLP.
enum class Activation {
    kTanh,
    kRelu,
    kSigmoid,
};

/// Training hyper-parameters for MlpNetwork::train.
struct MlpTrainOptions {
    int epochs = 80;
    double learning_rate = 0.05;
    double momentum = 0.9;
    /// Multiplicative learning-rate decay applied each epoch.
    double lr_decay = 0.98;
    /// Fraction of examples held out (from the end, before shuffling) for
    /// early stopping. 0 disables early stopping.
    double validation_fraction = 0.15;
    /// Stop if validation loss has not improved for this many epochs.
    int patience = 10;
    /// L2 weight penalty.
    double weight_decay = 1e-5;
    unsigned seed = 42;
    /// Optional stage-metrics sink (not owned): train() records
    /// `forecast.mlp.epochs` / `forecast.mlp.examples` counters. Early
    /// stopping is seed-deterministic, so both counters are too.
    obs::MetricsRegistry* metrics = nullptr;
    /// Optional cooperative-cancellation token (not owned): train()
    /// checks it at the top of every epoch ("forecast.mlp.epoch") and
    /// aborts with exec::OperationCancelled when tripped. Null disables
    /// the check.
    const exec::CancellationToken* cancel = nullptr;
};

/// Reusable forward/backprop scratch for MlpNetwork: per-layer
/// activations, pre-activations, and deltas, flattened into three
/// contiguous buffers with per-layer offsets. Sized lazily for whichever
/// topology uses it and re-sized (grown) when a differently-shaped
/// network does — results never depend on what the workspace held
/// before. One workspace per thread/task; sharing one instance across
/// concurrent predict/train calls is a race.
class MlpWorkspace {
  public:
    MlpWorkspace() = default;
    /// Arena-backed buffers (per-worker workspaces; the arena must
    /// outlive the workspace — exec/arena.hpp's lifetime rules).
    explicit MlpWorkspace(exec::Arena* arena)
        : acts(exec::ArenaAllocator<double>(arena)),
          pres(exec::ArenaAllocator<double>(arena)),
          deltas(exec::ArenaAllocator<double>(arena)),
          act_off(exec::ArenaAllocator<std::size_t>(arena)),
          unit_off(exec::ArenaAllocator<std::size_t>(arena)) {}

    /// Sizes the buffers for `layer_sizes` ({in, hidden..., out}) if not
    /// already sized for exactly that topology. Idempotent and cheap when
    /// the shape is unchanged — the steady state allocates nothing.
    void ensure(const std::vector<int>& layer_sizes);

  private:
    friend class MlpNetwork;

    exec::ArenaVector<double> acts;    ///< activations, all layers incl. input
    exec::ArenaVector<double> pres;    ///< pre-activations, layers 1..L
    exec::ArenaVector<double> deltas;  ///< backprop deltas, layers 1..L
    /// acts offset of layer l (0-based over layer_sizes).
    exec::ArenaVector<std::size_t> act_off;
    /// pres/deltas offset of layer l+1 (0-based over weight layers).
    exec::ArenaVector<std::size_t> unit_off;
    std::vector<int> sized_for;  ///< topology the offsets were built for
};

/// A small fully-connected feed-forward network with one output unit,
/// trained with stochastic gradient descent + momentum and MSE loss.
///
/// This is the from-scratch stand-in for the neural-network temporal model
/// the paper plugs in for signature series (PRACTISE, reference [7]).
/// Hidden layers use the configured activation; the output is linear so
/// the network regresses unbounded targets.
///
/// Weights, velocities, and scratch are stored as contiguous per-layer
/// arrays (weights[j*fan_in + i] is the weight from input i to unit j);
/// with a reused MlpWorkspace the per-sample SGD loop and predict() are
/// allocation-free.
class MlpNetwork {
  public:
    /// `layer_sizes` = {inputs, hidden..., 1}. At least {in, 1}. The final
    /// size must be 1 (scalar regression). Weights are initialized with
    /// Xavier/Glorot uniform scaling from `seed`.
    MlpNetwork(std::vector<int> layer_sizes, Activation activation, unsigned seed);

    /// Forward pass; `inputs` length must equal the input layer size.
    /// The workspace overload is allocation-free once `workspace` has
    /// been sized (first call does that); the plain overload allocates a
    /// fresh local workspace and stays safe for concurrent callers.
    [[nodiscard]] double predict(std::span<const double> inputs) const;
    double predict(std::span<const double> inputs, MlpWorkspace& workspace) const;

    /// Trains on (inputs, target) pairs; returns the best (early-stopped)
    /// validation loss, or the final training loss if validation is off.
    /// `workspace` (optional, caller-owned) carries the forward/backprop
    /// scratch; passing one reused across fits makes the per-sample SGD
    /// loop allocation-free. Results are identical with or without it.
    double train(const std::vector<std::vector<double>>& inputs,
                 std::span<const double> targets,
                 const MlpTrainOptions& options,
                 MlpWorkspace* workspace = nullptr);

    /// Flat-dataset overload: examples are the rows of one contiguous
    /// row-major block (ts::make_lag_dataset_flat's output) instead of
    /// per-example vectors — the fleet hot path, which avoids one heap
    /// allocation per example per fit. Identical results: the epoch
    /// loop, RNG draw order, and per-example arithmetic are shared with
    /// the nested-vector overload.
    double train(const la::FlatMatrix& inputs, std::span<const double> targets,
                 const MlpTrainOptions& options,
                 MlpWorkspace* workspace = nullptr);

    [[nodiscard]] int input_size() const { return layer_sizes_.front(); }

    /// Total trainable parameter count (weights + biases).
    [[nodiscard]] std::size_t parameter_count() const;

  private:
    struct Layer {
        int fan_in = 0;
        int fan_out = 0;
        /// weights[j * fan_in + i]: weight from input i to unit j.
        std::vector<double> weights;
        std::vector<double> biases;  ///< biases[j] per unit
        /// Momentum buffers, same shapes.
        std::vector<double> weight_velocity;
        std::vector<double> bias_velocity;
    };

    [[nodiscard]] double activate(double x) const;
    [[nodiscard]] double activate_grad(double activated, double pre) const;

    /// Shared training loop over an example accessor `row(i)` →
    /// span<const double>; both public overloads (nested vectors, flat
    /// matrix) funnel here, so their arithmetic cannot diverge.
    /// Instantiated only in nn.cpp.
    template <typename RowFn>
    double train_impl(RowFn row, std::size_t count,
                      std::span<const double> targets,
                      const MlpTrainOptions& options, MlpWorkspace* workspace);

    /// Forward pass into the workspace's activation/pre-activation
    /// buffers (for backprop and prediction).
    void forward(std::span<const double> inputs, MlpWorkspace& workspace) const;

    std::vector<int> layer_sizes_;
    Activation activation_;
    std::vector<Layer> layers_;
    std::mt19937 rng_;
};

}  // namespace atm::forecast
