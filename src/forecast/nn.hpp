#pragma once

#include <cstddef>
#include <random>
#include <span>
#include <vector>

namespace atm::obs {
class MetricsRegistry;
}

namespace atm::forecast {

/// Activation function for hidden layers of the MLP.
enum class Activation {
    kTanh,
    kRelu,
    kSigmoid,
};

/// Training hyper-parameters for MlpNetwork::train.
struct MlpTrainOptions {
    int epochs = 80;
    double learning_rate = 0.05;
    double momentum = 0.9;
    /// Multiplicative learning-rate decay applied each epoch.
    double lr_decay = 0.98;
    /// Fraction of examples held out (from the end, before shuffling) for
    /// early stopping. 0 disables early stopping.
    double validation_fraction = 0.15;
    /// Stop if validation loss has not improved for this many epochs.
    int patience = 10;
    /// L2 weight penalty.
    double weight_decay = 1e-5;
    unsigned seed = 42;
    /// Optional stage-metrics sink (not owned): train() records
    /// `forecast.mlp.epochs` / `forecast.mlp.examples` counters. Early
    /// stopping is seed-deterministic, so both counters are too.
    obs::MetricsRegistry* metrics = nullptr;
};

/// A small fully-connected feed-forward network with one output unit,
/// trained with stochastic gradient descent + momentum and MSE loss.
///
/// This is the from-scratch stand-in for the neural-network temporal model
/// the paper plugs in for signature series (PRACTISE, reference [7]).
/// Hidden layers use the configured activation; the output is linear so
/// the network regresses unbounded targets.
class MlpNetwork {
  public:
    /// `layer_sizes` = {inputs, hidden..., 1}. At least {in, 1}. The final
    /// size must be 1 (scalar regression). Weights are initialized with
    /// Xavier/Glorot uniform scaling from `seed`.
    MlpNetwork(std::vector<int> layer_sizes, Activation activation, unsigned seed);

    /// Forward pass; `inputs` length must equal the input layer size.
    [[nodiscard]] double predict(std::span<const double> inputs) const;

    /// Trains on (inputs, target) pairs; returns the best (early-stopped)
    /// validation loss, or the final training loss if validation is off.
    double train(const std::vector<std::vector<double>>& inputs,
                 std::span<const double> targets,
                 const MlpTrainOptions& options);

    [[nodiscard]] int input_size() const { return layer_sizes_.front(); }

    /// Total trainable parameter count (weights + biases).
    [[nodiscard]] std::size_t parameter_count() const;

  private:
    struct Layer {
        // weights[j][i]: weight from input i to unit j. biases[j] per unit.
        std::vector<std::vector<double>> weights;
        std::vector<double> biases;
        // Momentum buffers, same shapes.
        std::vector<std::vector<double>> weight_velocity;
        std::vector<double> bias_velocity;
    };

    [[nodiscard]] double activate(double x) const;
    [[nodiscard]] double activate_grad(double activated, double pre) const;

    /// Forward pass keeping per-layer activations (for backprop).
    void forward(std::span<const double> inputs,
                 std::vector<std::vector<double>>& activations,
                 std::vector<std::vector<double>>& pre_activations) const;

    std::vector<int> layer_sizes_;
    Activation activation_;
    std::vector<Layer> layers_;
    std::mt19937 rng_;
};

}  // namespace atm::forecast
