#include "forecast/seasonal_naive.hpp"

#include <stdexcept>

namespace atm::forecast {

SeasonalNaiveForecaster::SeasonalNaiveForecaster(int period) : period_(period) {
    if (period < 1) {
        throw std::invalid_argument("SeasonalNaiveForecaster: period must be >= 1");
    }
}

void SeasonalNaiveForecaster::fit(std::span<const double> history) {
    if (history.empty()) {
        throw std::invalid_argument("SeasonalNaiveForecaster::fit: empty history");
    }
    history_.assign(history.begin(), history.end());
}

std::vector<double> SeasonalNaiveForecaster::forecast(int horizon) const {
    if (history_.empty()) {
        throw std::logic_error("SeasonalNaiveForecaster::forecast before fit");
    }
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(std::max(horizon, 0)));
    const std::size_t n = history_.size();
    const auto period = static_cast<std::size_t>(period_);
    for (int h = 0; h < horizon; ++h) {
        if (n >= period) {
            // Value one season before the forecast position, wrapping within
            // the last season for horizons beyond one period.
            const std::size_t offset = static_cast<std::size_t>(h) % period;
            out.push_back(history_[n - period + offset]);
        } else {
            out.push_back(history_.back());
        }
    }
    return out;
}

}  // namespace atm::forecast
