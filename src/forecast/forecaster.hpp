#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace atm::exec {
class CancellationToken;
}
namespace atm::obs {
class MetricsRegistry;
}

namespace atm::forecast {

class MlpWorkspace;

/// Interface for temporal prediction models of a single demand series.
///
/// ATM predicts only *signature* series with a (potentially expensive)
/// temporal model and derives all dependent series from them via the
/// spatial model. The paper stresses that "any temporal prediction model
/// can be directly plugged into the ATM framework" (Section III); this
/// interface is that plug point.
///
/// Contract: `fit` consumes the historical samples (oldest first);
/// `forecast(h)` returns h samples continuing immediately after the history.
/// Calling forecast before fit, or fit with an empty history, throws
/// std::logic_error / std::invalid_argument respectively.
class Forecaster {
  public:
    virtual ~Forecaster() = default;

    /// Trains the model on the given history (oldest sample first).
    virtual void fit(std::span<const double> history) = 0;

    /// Predicts the next `horizon` samples after the fitted history.
    [[nodiscard]] virtual std::vector<double> forecast(int horizon) const = 0;

    /// Short model name for logs and experiment reports.
    [[nodiscard]] virtual std::string name() const = 0;
};

/// Which temporal model the pipeline instantiates for signature series.
enum class TemporalModel {
    kSeasonalNaive,  ///< repeat the last full season
    kAutoregressive, ///< AR(p) via OLS
    kNeuralNetwork,  ///< MLP on lag + seasonal features (the paper's choice)
    kHoltWinters,    ///< additive triple exponential smoothing
    kEnsemble,       ///< mean of AR, Holt-Winters and the MLP
};

/// Factory for the built-in temporal models.
///
/// `seasonal_period` is the dominant seasonality in samples (96 for
/// 15-minute windows over a day); `seed` feeds stochastic trainers (MLP).
/// `metrics` (optional, not owned) receives trainer counters from models
/// that expose them (the MLP's epoch/example counts). `cancel` (optional,
/// not owned) is a cooperative-cancellation token checked once per
/// training epoch by the iterative trainers (the MLP — directly and as an
/// ensemble member); the closed-form models finish too fast to need it.
/// `mlp_workspace` (optional, not owned) is caller-owned scratch for the
/// MLP's forward/backprop buffers — the fleet scheduler's per-worker
/// workspace, reused across boxes; results are identical without it.
std::unique_ptr<Forecaster> make_forecaster(
    TemporalModel model, int seasonal_period, unsigned seed = 42,
    obs::MetricsRegistry* metrics = nullptr,
    const exec::CancellationToken* cancel = nullptr,
    MlpWorkspace* mlp_workspace = nullptr);

std::string to_string(TemporalModel model);

}  // namespace atm::forecast
