#include "forecast/holt_winters.hpp"

#include <numeric>
#include <stdexcept>

namespace atm::forecast {

HoltWintersForecaster::HoltWintersForecaster(int period,
                                             HoltWintersOptions options)
    : period_(period), options_(options) {
    if (period < 2) {
        throw std::invalid_argument("HoltWintersForecaster: period must be >= 2");
    }
    if (options.alpha <= 0.0 || options.alpha >= 1.0 || options.beta < 0.0 ||
        options.beta >= 1.0 || options.gamma <= 0.0 || options.gamma >= 1.0) {
        throw std::invalid_argument("HoltWintersForecaster: smoothing out of range");
    }
}

void HoltWintersForecaster::fit(std::span<const double> history) {
    if (history.empty()) {
        throw std::invalid_argument("HoltWintersForecaster::fit: empty history");
    }
    const auto m = static_cast<std::size_t>(period_);
    fit_called_ = true;
    fallback_ = history.back();
    if (history.size() < 2 * m) {
        fitted_ = false;  // not enough data for seasonal initialization
        return;
    }

    // Initialization: level = mean of season 1; trend = mean per-sample
    // change between season 1 and season 2; seasonal indices = first-season
    // deviations from its mean.
    double s1 = 0.0;
    double s2 = 0.0;
    for (std::size_t t = 0; t < m; ++t) {
        s1 += history[t];
        s2 += history[m + t];
    }
    s1 /= static_cast<double>(m);
    s2 /= static_cast<double>(m);
    level_ = s1;
    trend_ = (s2 - s1) / static_cast<double>(m);
    season_.assign(m, 0.0);
    for (std::size_t t = 0; t < m; ++t) season_[t] = history[t] - s1;

    for (std::size_t t = m; t < history.size(); ++t) {
        const std::size_t phase = t % m;
        const double prev_level = level_;
        level_ = options_.alpha * (history[t] - season_[phase]) +
                 (1.0 - options_.alpha) * (level_ + trend_);
        trend_ = options_.beta * (level_ - prev_level) +
                 (1.0 - options_.beta) * trend_;
        season_[phase] = options_.gamma * (history[t] - level_) +
                         (1.0 - options_.gamma) * season_[phase];
    }
    // Phase bookkeeping for forecasting: the next sample after the history
    // has phase history.size() % m.
    // Rotate so season_[h % m] is the index for horizon step h.
    std::vector<double> rotated(m);
    for (std::size_t h = 0; h < m; ++h) {
        rotated[h] = season_[(history.size() + h) % m];
    }
    season_ = std::move(rotated);
    fitted_ = true;
}

std::vector<double> HoltWintersForecaster::forecast(int horizon) const {
    if (!fit_called_) {
        throw std::logic_error("HoltWintersForecaster::forecast before fit");
    }
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(std::max(horizon, 0)));
    if (!fitted_) {
        out.assign(static_cast<std::size_t>(std::max(horizon, 0)), fallback_);
        return out;
    }
    double damped_trend_sum = 0.0;
    double damp = 1.0;
    for (int h = 0; h < horizon; ++h) {
        damp *= options_.trend_damping;
        damped_trend_sum += trend_ * damp;
        const std::size_t phase =
            static_cast<std::size_t>(h) % season_.size();
        out.push_back(level_ + damped_trend_sum + season_[phase]);
    }
    return out;
}

EnsembleForecaster::EnsembleForecaster(
    std::vector<std::unique_ptr<Forecaster>> members)
    : members_(std::move(members)) {
    if (members_.empty()) {
        throw std::invalid_argument("EnsembleForecaster: no members");
    }
    for (const auto& m : members_) {
        if (m == nullptr) {
            throw std::invalid_argument("EnsembleForecaster: null member");
        }
    }
}

void EnsembleForecaster::fit(std::span<const double> history) {
    for (auto& m : members_) m->fit(history);
}

std::vector<double> EnsembleForecaster::forecast(int horizon) const {
    std::vector<double> acc(static_cast<std::size_t>(std::max(horizon, 0)), 0.0);
    for (const auto& m : members_) {
        const std::vector<double> f = m->forecast(horizon);
        for (std::size_t t = 0; t < acc.size(); ++t) acc[t] += f[t];
    }
    for (double& v : acc) v /= static_cast<double>(members_.size());
    return acc;
}

}  // namespace atm::forecast
