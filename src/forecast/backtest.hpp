#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "forecast/forecaster.hpp"

namespace atm::forecast {

/// One rolling-origin evaluation fold.
struct BacktestFold {
    std::size_t origin = 0;  ///< history length used for this fold
    double mape = 0.0;       ///< fractional APE over the fold's horizon
    double rmse = 0.0;
    double peak_mape = 0.0;  ///< APE restricted to the top-decile actuals
};

/// Result of backtesting one model on one series.
struct BacktestResult {
    std::string model;
    std::vector<BacktestFold> folds;
    double mean_mape = 0.0;
    double mean_rmse = 0.0;
    double mean_peak_mape = 0.0;
};

/// Rolling-origin (walk-forward) backtest: for each fold, fit on
/// [0, origin) and forecast `horizon` samples; origins advance by
/// `step` from `min_history` until the horizon no longer fits. The
/// standard protocol for honest forecast-accuracy measurement — no fold
/// ever sees its own future.
///
/// `factory` must return a fresh Forecaster per call (fits are stateful).
/// Throws std::invalid_argument when no fold fits the series.
BacktestResult backtest(const std::vector<double>& series,
                        const std::function<std::unique_ptr<Forecaster>()>& factory,
                        std::size_t min_history, int horizon,
                        std::size_t step);

/// Backtests every built-in TemporalModel on the series and returns the
/// results sorted by mean MAPE (best first).
std::vector<BacktestResult> compare_models(const std::vector<double>& series,
                                           int seasonal_period,
                                           std::size_t min_history,
                                           int horizon, std::size_t step,
                                           unsigned seed = 42);

}  // namespace atm::forecast
