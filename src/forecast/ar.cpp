#include "forecast/ar.hpp"

#include <algorithm>
#include <stdexcept>

#include "linalg/ols.hpp"
#include "timeseries/features.hpp"

namespace atm::forecast {

ArForecaster::ArForecaster(int order, int seasonal_period)
    : order_(order), seasonal_period_(seasonal_period) {
    if (order < 1) throw std::invalid_argument("ArForecaster: order must be >= 1");
    if (seasonal_period < 0) {
        throw std::invalid_argument("ArForecaster: negative seasonal period");
    }
}

void ArForecaster::fit(std::span<const double> history) {
    if (history.empty()) throw std::invalid_argument("ArForecaster::fit: empty history");
    history_.assign(history.begin(), history.end());

    const std::vector<ts::LagExample> dataset =
        ts::make_lag_dataset(history, order_, seasonal_period_);
    if (dataset.empty()) {
        // Too little history to estimate: degrade to a constant model
        // (intercept = last value, all lag weights zero).
        const std::size_t width =
            static_cast<std::size_t>(order_) + (seasonal_period_ > 0 ? 1 : 0);
        coefficients_.assign(width + 1, 0.0);
        coefficients_[0] = history.back();
        return;
    }

    const std::size_t width = dataset.front().lags.size();
    std::vector<std::vector<double>> predictors(width,
                                                std::vector<double>(dataset.size()));
    std::vector<double> target(dataset.size());
    for (std::size_t i = 0; i < dataset.size(); ++i) {
        for (std::size_t j = 0; j < width; ++j) predictors[j][i] = dataset[i].lags[j];
        target[i] = dataset[i].target;
    }
    coefficients_ = la::ols_fit(target, predictors).coefficients;
}

std::vector<double> ArForecaster::forecast(int horizon) const {
    if (coefficients_.empty()) throw std::logic_error("ArForecaster::forecast before fit");

    // Extended series = history followed by the predictions produced so far,
    // so later steps can consume earlier forecasts as lag inputs.
    std::vector<double> extended = history_;
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(std::max(horizon, 0)));

    for (int h = 0; h < horizon; ++h) {
        double acc = coefficients_[0];
        std::size_t coeff = 1;
        for (int k = order_; k >= 1; --k, ++coeff) {
            const auto lag = static_cast<std::size_t>(k);
            const double value = lag <= extended.size()
                                     ? extended[extended.size() - lag]
                                     : extended.front();
            acc += coefficients_[coeff] * value;
        }
        if (seasonal_period_ > 0 && coeff < coefficients_.size()) {
            const auto lag = static_cast<std::size_t>(seasonal_period_);
            const double value = lag <= extended.size()
                                     ? extended[extended.size() - lag]
                                     : extended.front();
            acc += coefficients_[coeff] * value;
        }
        extended.push_back(acc);
        out.push_back(acc);
    }
    return out;
}

}  // namespace atm::forecast
