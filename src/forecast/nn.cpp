#include "forecast/nn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "exec/cancel.hpp"
#include "linalg/simd/simd.hpp"
#include "obs/metrics.hpp"

namespace atm::forecast {

void MlpWorkspace::ensure(const std::vector<int>& layer_sizes) {
    if (sized_for == layer_sizes) return;
    sized_for = layer_sizes;
    act_off.assign(layer_sizes.size(), 0);
    unit_off.assign(layer_sizes.size() - 1, 0);
    std::size_t acts_total = 0;
    std::size_t units_total = 0;
    for (std::size_t l = 0; l < layer_sizes.size(); ++l) {
        act_off[l] = acts_total;
        acts_total += static_cast<std::size_t>(layer_sizes[l]);
        if (l > 0) {
            unit_off[l - 1] = units_total;
            units_total += static_cast<std::size_t>(layer_sizes[l]);
        }
    }
    // resize (not assign): keep capacity, values are always written by
    // forward/backprop before being read.
    acts.resize(acts_total);
    pres.resize(units_total);
    deltas.resize(units_total);
}

MlpNetwork::MlpNetwork(std::vector<int> layer_sizes, Activation activation,
                       unsigned seed)
    : layer_sizes_(std::move(layer_sizes)), activation_(activation), rng_(seed) {
    if (layer_sizes_.size() < 2) {
        throw std::invalid_argument("MlpNetwork: need at least input and output layer");
    }
    if (layer_sizes_.back() != 1) {
        throw std::invalid_argument("MlpNetwork: output layer must have size 1");
    }
    for (int s : layer_sizes_) {
        if (s < 1) throw std::invalid_argument("MlpNetwork: layer size must be >= 1");
    }
    layers_.resize(layer_sizes_.size() - 1);
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const int fan_in = layer_sizes_[l];
        const int fan_out = layer_sizes_[l + 1];
        const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
        std::uniform_real_distribution<double> dist(-limit, limit);
        Layer& layer = layers_[l];
        layer.fan_in = fan_in;
        layer.fan_out = fan_out;
        const auto weight_count =
            static_cast<std::size_t>(fan_out) * static_cast<std::size_t>(fan_in);
        layer.weights.resize(weight_count);
        layer.biases.assign(static_cast<std::size_t>(fan_out), 0.0);
        layer.weight_velocity.assign(weight_count, 0.0);
        layer.bias_velocity.assign(static_cast<std::size_t>(fan_out), 0.0);
        // Row-major draw order matches the historical nested-vector
        // layout (unit j's row, then input i), so a given seed produces
        // the exact same initial network.
        for (double& w : layer.weights) w = dist(rng_);
    }
}

double MlpNetwork::activate(double x) const {
    switch (activation_) {
        case Activation::kTanh: return std::tanh(x);
        case Activation::kRelu: return x > 0.0 ? x : 0.0;
        case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
    }
    return x;
}

double MlpNetwork::activate_grad(double activated, double pre) const {
    switch (activation_) {
        case Activation::kTanh: return 1.0 - activated * activated;
        case Activation::kRelu: return pre > 0.0 ? 1.0 : 0.0;
        case Activation::kSigmoid: return activated * (1.0 - activated);
    }
    return 1.0;
}

void MlpNetwork::forward(std::span<const double> inputs,
                         MlpWorkspace& ws) const {
    ws.ensure(layer_sizes_);
    std::copy(inputs.begin(), inputs.end(), ws.acts.begin());

    // Dot products run on the active SIMD path; this is the one kernel
    // whose vectorization reassociates FP sums (simd.hpp's tolerance
    // policy), so forecasts on vector paths may drift by ULPs from scalar.
    const simd::KernelTable& kernels = simd::active_kernels();
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Layer& layer = layers_[l];
        const double* in = ws.acts.data() + ws.act_off[l];
        const bool is_output = l + 1 == layers_.size();
        double* pre = ws.pres.data() + ws.unit_off[l];
        double* out = ws.acts.data() + ws.act_off[l + 1];
        const auto fan_in = static_cast<std::size_t>(layer.fan_in);
        const auto fan_out = static_cast<std::size_t>(layer.fan_out);
        kernels.mlp_forward_layer(layer.weights.data(), layer.biases.data(),
                                  in, fan_in, fan_out, pre);
        for (std::size_t j = 0; j < fan_out; ++j) {
            out[j] = is_output ? pre[j] : activate(pre[j]);  // linear output unit
        }
    }
}

double MlpNetwork::predict(std::span<const double> inputs,
                           MlpWorkspace& workspace) const {
    if (inputs.size() != static_cast<std::size_t>(layer_sizes_.front())) {
        throw std::invalid_argument("MlpNetwork::predict: input size mismatch");
    }
    forward(inputs, workspace);
    return workspace.acts.back();
}

double MlpNetwork::predict(std::span<const double> inputs) const {
    MlpWorkspace workspace;
    return predict(inputs, workspace);
}

std::size_t MlpNetwork::parameter_count() const {
    std::size_t count = 0;
    for (const Layer& layer : layers_) {
        count += layer.weights.size() + layer.biases.size();
    }
    return count;
}

template <typename RowFn>
double MlpNetwork::train_impl(RowFn row, std::size_t count,
                              std::span<const double> targets,
                              const MlpTrainOptions& options,
                              MlpWorkspace* workspace) {
    // Hold out the chronologically last fraction as validation (time-series
    // aware: never validate on data older than training samples).
    std::size_t val_count = 0;
    if (options.validation_fraction > 0.0 && count >= 10) {
        val_count = static_cast<std::size_t>(
            options.validation_fraction * static_cast<double>(count));
        val_count = std::min(val_count, count - 1);
    }
    const std::size_t train_count = count - val_count;

    std::vector<std::size_t> order(train_count);
    std::iota(order.begin(), order.end(), 0);
    std::mt19937 shuffle_rng(options.seed);

    MlpWorkspace local_ws;
    MlpWorkspace& ws = workspace != nullptr ? *workspace : local_ws;
    ws.ensure(layer_sizes_);

    double lr = options.learning_rate;
    double best_val = std::numeric_limits<double>::infinity();
    double last_train_loss = 0.0;
    int since_best = 0;

    auto validation_loss = [&]() {
        if (val_count == 0) return 0.0;
        double acc = 0.0;
        for (std::size_t i = train_count; i < count; ++i) {
            const double err = predict(row(i), ws) - targets[i];
            acc += err * err;
        }
        return acc / static_cast<double>(val_count);
    };

    int epochs_run = 0;
    const simd::KernelTable& kernels = simd::active_kernels();
    for (int epoch = 0; epoch < options.epochs; ++epoch) {
        // Cancellation point: one atomic load per epoch, so a box past its
        // deadline stops mid-training instead of finishing all epochs.
        exec::checkpoint(options.cancel, "forecast.mlp.epoch");
        ++epochs_run;
        std::shuffle(order.begin(), order.end(), shuffle_rng);
        double train_loss = 0.0;
        for (std::size_t idx : order) {
            forward(row(idx), ws);
            const double out = ws.acts.back();
            const double err = out - targets[idx];
            train_loss += err * err;

            // Backprop: output delta is plain error (linear output, MSE).
            // The kernel computes the raw weighted sums (bit-identical to
            // the historical loop on every path); the activation gradient
            // is applied here.
            ws.deltas[ws.unit_off.back()] = err;
            for (std::size_t l = layers_.size() - 1; l-- > 0;) {
                const Layer& next = layers_[l + 1];
                double* delta = ws.deltas.data() + ws.unit_off[l];
                const double* next_delta = ws.deltas.data() + ws.unit_off[l + 1];
                const double* act = ws.acts.data() + ws.act_off[l + 1];
                const double* pre = ws.pres.data() + ws.unit_off[l];
                const auto width = static_cast<std::size_t>(next.fan_in);
                kernels.mlp_backprop_delta(
                    next.weights.data(), next_delta, width,
                    static_cast<std::size_t>(next.fan_out), delta);
                for (std::size_t j = 0; j < width; ++j) {
                    delta[j] = delta[j] * activate_grad(act[j], pre[j]);
                }
            }
            // SGD + momentum update: weights via the (bit-identical,
            // element-wise) kernel, biases inline.
            for (std::size_t l = 0; l < layers_.size(); ++l) {
                Layer& layer = layers_[l];
                const double* in = ws.acts.data() + ws.act_off[l];
                const double* delta = ws.deltas.data() + ws.unit_off[l];
                const auto fan_in = static_cast<std::size_t>(layer.fan_in);
                const auto fan_out = static_cast<std::size_t>(layer.fan_out);
                kernels.mlp_sgd_layer(layer.weights.data(),
                                      layer.weight_velocity.data(), in, delta,
                                      fan_in, fan_out, lr, options.momentum,
                                      options.weight_decay);
                for (std::size_t j = 0; j < fan_out; ++j) {
                    layer.bias_velocity[j] =
                        options.momentum * layer.bias_velocity[j] -
                        lr * delta[j];
                    layer.biases[j] += layer.bias_velocity[j];
                }
            }
        }
        last_train_loss = train_loss / static_cast<double>(train_count);
        lr *= options.lr_decay;

        if (val_count > 0) {
            const double val = validation_loss();
            if (val < best_val - 1e-12) {
                best_val = val;
                since_best = 0;
            } else if (++since_best >= options.patience) {
                break;
            }
        }
    }
    if (options.metrics != nullptr) {
        options.metrics->add("forecast.mlp.fits");
        options.metrics->add("forecast.mlp.epochs",
                             static_cast<std::uint64_t>(epochs_run));
        options.metrics->add("forecast.mlp.examples", count);
    }
    return val_count > 0 ? best_val : last_train_loss;
}

double MlpNetwork::train(const std::vector<std::vector<double>>& inputs,
                         std::span<const double> targets,
                         const MlpTrainOptions& options,
                         MlpWorkspace* workspace) {
    if (inputs.size() != targets.size()) {
        throw std::invalid_argument("MlpNetwork::train: example count mismatch");
    }
    if (inputs.empty()) throw std::invalid_argument("MlpNetwork::train: no examples");
    for (const auto& x : inputs) {
        if (x.size() != static_cast<std::size_t>(layer_sizes_.front())) {
            throw std::invalid_argument("MlpNetwork::train: input size mismatch");
        }
    }
    return train_impl(
        [&inputs](std::size_t i) { return std::span<const double>(inputs[i]); },
        inputs.size(), targets, options, workspace);
}

double MlpNetwork::train(const la::FlatMatrix& inputs,
                         std::span<const double> targets,
                         const MlpTrainOptions& options,
                         MlpWorkspace* workspace) {
    if (inputs.rows() != targets.size()) {
        throw std::invalid_argument("MlpNetwork::train: example count mismatch");
    }
    if (inputs.rows() == 0) {
        throw std::invalid_argument("MlpNetwork::train: no examples");
    }
    if (inputs.cols() != static_cast<std::size_t>(layer_sizes_.front())) {
        throw std::invalid_argument("MlpNetwork::train: input size mismatch");
    }
    const la::FlatMatrix& rows = inputs;
    return train_impl([&rows](std::size_t i) { return rows[i]; }, inputs.rows(),
                      targets, options, workspace);
}

}  // namespace atm::forecast
