#include "forecast/nn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace atm::forecast {

MlpNetwork::MlpNetwork(std::vector<int> layer_sizes, Activation activation,
                       unsigned seed)
    : layer_sizes_(std::move(layer_sizes)), activation_(activation), rng_(seed) {
    if (layer_sizes_.size() < 2) {
        throw std::invalid_argument("MlpNetwork: need at least input and output layer");
    }
    if (layer_sizes_.back() != 1) {
        throw std::invalid_argument("MlpNetwork: output layer must have size 1");
    }
    for (int s : layer_sizes_) {
        if (s < 1) throw std::invalid_argument("MlpNetwork: layer size must be >= 1");
    }
    layers_.resize(layer_sizes_.size() - 1);
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const int fan_in = layer_sizes_[l];
        const int fan_out = layer_sizes_[l + 1];
        const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
        std::uniform_real_distribution<double> dist(-limit, limit);
        Layer& layer = layers_[l];
        layer.weights.assign(static_cast<std::size_t>(fan_out),
                             std::vector<double>(static_cast<std::size_t>(fan_in)));
        layer.biases.assign(static_cast<std::size_t>(fan_out), 0.0);
        layer.weight_velocity.assign(static_cast<std::size_t>(fan_out),
                                     std::vector<double>(static_cast<std::size_t>(fan_in), 0.0));
        layer.bias_velocity.assign(static_cast<std::size_t>(fan_out), 0.0);
        for (auto& row : layer.weights) {
            for (double& w : row) w = dist(rng_);
        }
    }
}

double MlpNetwork::activate(double x) const {
    switch (activation_) {
        case Activation::kTanh: return std::tanh(x);
        case Activation::kRelu: return x > 0.0 ? x : 0.0;
        case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
    }
    return x;
}

double MlpNetwork::activate_grad(double activated, double pre) const {
    switch (activation_) {
        case Activation::kTanh: return 1.0 - activated * activated;
        case Activation::kRelu: return pre > 0.0 ? 1.0 : 0.0;
        case Activation::kSigmoid: return activated * (1.0 - activated);
    }
    return 1.0;
}

void MlpNetwork::forward(std::span<const double> inputs,
                         std::vector<std::vector<double>>& activations,
                         std::vector<std::vector<double>>& pre_activations) const {
    activations.assign(layers_.size() + 1, {});
    pre_activations.assign(layers_.size(), {});
    activations[0].assign(inputs.begin(), inputs.end());

    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Layer& layer = layers_[l];
        const std::vector<double>& in = activations[l];
        const bool is_output = l + 1 == layers_.size();
        std::vector<double>& pre = pre_activations[l];
        std::vector<double>& out = activations[l + 1];
        pre.resize(layer.weights.size());
        out.resize(layer.weights.size());
        for (std::size_t j = 0; j < layer.weights.size(); ++j) {
            double acc = layer.biases[j];
            const auto& row = layer.weights[j];
            for (std::size_t i = 0; i < row.size(); ++i) acc += row[i] * in[i];
            pre[j] = acc;
            out[j] = is_output ? acc : activate(acc);  // linear output unit
        }
    }
}

double MlpNetwork::predict(std::span<const double> inputs) const {
    if (inputs.size() != static_cast<std::size_t>(layer_sizes_.front())) {
        throw std::invalid_argument("MlpNetwork::predict: input size mismatch");
    }
    std::vector<std::vector<double>> acts;
    std::vector<std::vector<double>> pres;
    forward(inputs, acts, pres);
    return acts.back().front();
}

std::size_t MlpNetwork::parameter_count() const {
    std::size_t count = 0;
    for (const Layer& layer : layers_) {
        for (const auto& row : layer.weights) count += row.size();
        count += layer.biases.size();
    }
    return count;
}

double MlpNetwork::train(const std::vector<std::vector<double>>& inputs,
                         std::span<const double> targets,
                         const MlpTrainOptions& options) {
    if (inputs.size() != targets.size()) {
        throw std::invalid_argument("MlpNetwork::train: example count mismatch");
    }
    if (inputs.empty()) throw std::invalid_argument("MlpNetwork::train: no examples");
    for (const auto& x : inputs) {
        if (x.size() != static_cast<std::size_t>(layer_sizes_.front())) {
            throw std::invalid_argument("MlpNetwork::train: input size mismatch");
        }
    }

    // Hold out the chronologically last fraction as validation (time-series
    // aware: never validate on data older than training samples).
    std::size_t val_count = 0;
    if (options.validation_fraction > 0.0 && inputs.size() >= 10) {
        val_count = static_cast<std::size_t>(
            options.validation_fraction * static_cast<double>(inputs.size()));
        val_count = std::min(val_count, inputs.size() - 1);
    }
    const std::size_t train_count = inputs.size() - val_count;

    std::vector<std::size_t> order(train_count);
    std::iota(order.begin(), order.end(), 0);
    std::mt19937 shuffle_rng(options.seed);

    std::vector<std::vector<double>> acts;
    std::vector<std::vector<double>> pres;
    std::vector<std::vector<double>> deltas(layers_.size());

    double lr = options.learning_rate;
    double best_val = std::numeric_limits<double>::infinity();
    double last_train_loss = 0.0;
    int since_best = 0;

    auto validation_loss = [&]() {
        if (val_count == 0) return 0.0;
        double acc = 0.0;
        for (std::size_t i = train_count; i < inputs.size(); ++i) {
            const double err = predict(inputs[i]) - targets[i];
            acc += err * err;
        }
        return acc / static_cast<double>(val_count);
    };

    int epochs_run = 0;
    for (int epoch = 0; epoch < options.epochs; ++epoch) {
        ++epochs_run;
        std::shuffle(order.begin(), order.end(), shuffle_rng);
        double train_loss = 0.0;
        for (std::size_t idx : order) {
            forward(inputs[idx], acts, pres);
            const double out = acts.back().front();
            const double err = out - targets[idx];
            train_loss += err * err;

            // Backprop: output delta is plain error (linear output, MSE).
            deltas.back().assign(1, err);
            for (std::size_t l = layers_.size() - 1; l-- > 0;) {
                const Layer& next = layers_[l + 1];
                std::vector<double>& delta = deltas[l];
                delta.assign(acts[l + 1].size(), 0.0);
                for (std::size_t j = 0; j < delta.size(); ++j) {
                    double acc = 0.0;
                    for (std::size_t k = 0; k < next.weights.size(); ++k) {
                        acc += next.weights[k][j] * deltas[l + 1][k];
                    }
                    delta[j] = acc * activate_grad(acts[l + 1][j], pres[l][j]);
                }
            }
            // SGD + momentum update.
            for (std::size_t l = 0; l < layers_.size(); ++l) {
                Layer& layer = layers_[l];
                const std::vector<double>& in = acts[l];
                for (std::size_t j = 0; j < layer.weights.size(); ++j) {
                    const double d = deltas[l][j];
                    auto& row = layer.weights[j];
                    auto& vel = layer.weight_velocity[j];
                    for (std::size_t i = 0; i < row.size(); ++i) {
                        const double grad = d * in[i] + options.weight_decay * row[i];
                        vel[i] = options.momentum * vel[i] - lr * grad;
                        row[i] += vel[i];
                    }
                    layer.bias_velocity[j] =
                        options.momentum * layer.bias_velocity[j] - lr * d;
                    layer.biases[j] += layer.bias_velocity[j];
                }
            }
        }
        last_train_loss = train_loss / static_cast<double>(train_count);
        lr *= options.lr_decay;

        if (val_count > 0) {
            const double val = validation_loss();
            if (val < best_val - 1e-12) {
                best_val = val;
                since_best = 0;
            } else if (++since_best >= options.patience) {
                break;
            }
        }
    }
    if (options.metrics != nullptr) {
        options.metrics->add("forecast.mlp.fits");
        options.metrics->add("forecast.mlp.epochs",
                             static_cast<std::uint64_t>(epochs_run));
        options.metrics->add("forecast.mlp.examples", inputs.size());
    }
    return val_count > 0 ? best_val : last_train_loss;
}

}  // namespace atm::forecast
