#pragma once

#include <vector>

#include "forecast/forecaster.hpp"

namespace atm::forecast {

/// Autoregressive AR(p) forecaster fit by ordinary least squares, with an
/// optional extra seasonal lag term (value one season back), i.e.
///   x_t = c + Σ_{k=1..p} φ_k x_{t−k} [+ φ_s x_{t−period}] + ε_t.
///
/// Multi-step forecasts are produced by iterating one-step predictions and
/// feeding them back as inputs. This stands in for the classical "temporal
/// models such as ARIMA" the paper contrasts against (Section III): cheap,
/// good on smooth seasonal series, weaker on bursts.
class ArForecaster final : public Forecaster {
  public:
    /// `order` = p (number of consecutive lags, >= 1); `seasonal_period`
    /// adds one seasonal lag when > 0.
    explicit ArForecaster(int order, int seasonal_period = 0);

    void fit(std::span<const double> history) override;
    [[nodiscard]] std::vector<double> forecast(int horizon) const override;
    [[nodiscard]] std::string name() const override { return "ar"; }

    /// Fitted coefficients: intercept, then φ_1..φ_p, then (if seasonal)
    /// φ_s. Empty before fit.
    [[nodiscard]] const std::vector<double>& coefficients() const {
        return coefficients_;
    }

  private:
    int order_;
    int seasonal_period_;
    std::vector<double> coefficients_;
    std::vector<double> history_;
};

}  // namespace atm::forecast
