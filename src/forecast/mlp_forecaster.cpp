#include "forecast/mlp_forecaster.hpp"

#include <algorithm>
#include <stdexcept>

namespace atm::forecast {

MlpForecaster::MlpForecaster(MlpForecasterOptions options)
    : options_(std::move(options)) {
    if (options_.num_lags < 1) {
        throw std::invalid_argument("MlpForecaster: num_lags must be >= 1");
    }
    if (options_.seasonal_period < 0) {
        throw std::invalid_argument("MlpForecaster: negative seasonal period");
    }
}

void MlpForecaster::fit(std::span<const double> history) {
    if (history.empty()) throw std::invalid_argument("MlpForecaster::fit: empty history");
    history_.assign(history.begin(), history.end());

    scaler_.fit(history);
    const std::vector<double> scaled = scaler_.transform(history);

    // Flat lag dataset: one contiguous feature block instead of one
    // vector per example (same rows/values as make_lag_dataset).
    la::FlatMatrix features;
    std::vector<double> targets;
    ts::make_lag_dataset_flat(scaled, options_.num_lags,
                              options_.seasonal_period, features, targets);
    // Degenerate cases: constant series or not enough history for even one
    // training example — predict the last value.
    const double lo = *std::min_element(history.begin(), history.end());
    const double hi = *std::max_element(history.begin(), history.end());
    if (features.rows() < 4 || hi - lo < 1e-12) {
        degenerate_ = true;
        constant_value_ = history.back();
        network_.reset();
        return;
    }
    degenerate_ = false;

    const int input_size = static_cast<int>(features.cols());
    std::vector<int> layer_sizes;
    layer_sizes.push_back(input_size);
    for (int h : options_.hidden) layer_sizes.push_back(h);
    layer_sizes.push_back(1);

    network_ = std::make_unique<MlpNetwork>(layer_sizes, options_.activation,
                                            options_.train.seed);
    network_->train(features, targets, options_.train, options_.workspace);
}

std::vector<double> MlpForecaster::forecast(int horizon) const {
    if (history_.empty()) throw std::logic_error("MlpForecaster::forecast before fit");
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(std::max(horizon, 0)));
    if (degenerate_) {
        out.assign(static_cast<std::size_t>(std::max(horizon, 0)), constant_value_);
        return out;
    }

    // Scaled extended series: history then forecasts, so lag/seasonal
    // features for later steps can be looked up uniformly.
    std::vector<double> extended = scaler_.transform(history_);
    extended.reserve(extended.size() + static_cast<std::size_t>(std::max(horizon, 0)));
    const auto lags = static_cast<std::size_t>(options_.num_lags);
    const auto period = static_cast<std::size_t>(options_.seasonal_period);

    // One workspace and feature buffer reused across the horizon: the
    // per-step loop below is allocation-free. A caller-provided
    // workspace (per-worker, arena-backed) is reused across boxes too.
    MlpWorkspace local_workspace;
    MlpWorkspace& workspace = options_.workspace != nullptr
                                  ? *options_.workspace
                                  : local_workspace;
    std::vector<double> features;
    features.reserve(lags + (period > 0 ? 1 : 0));
    for (int h = 0; h < horizon; ++h) {
        features.clear();
        for (std::size_t k = lags; k >= 1; --k) {
            features.push_back(k <= extended.size() ? extended[extended.size() - k]
                                                    : extended.front());
        }
        if (period > 0) {
            features.push_back(period <= extended.size()
                                   ? extended[extended.size() - period]
                                   : extended.front());
        }
        // Clamp to the scaler's range: utilization-like series cannot run
        // away, and iterated feedback must not compound extrapolation.
        const double scaled_pred =
            std::clamp(network_->predict(features, workspace), -0.25, 1.25);
        extended.push_back(scaled_pred);
        out.push_back(scaler_.inverse(scaled_pred));
    }
    return out;
}

}  // namespace atm::forecast
