#include "forecast/backtest.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "timeseries/stats.hpp"

namespace atm::forecast {

BacktestResult backtest(
    const std::vector<double>& series,
    const std::function<std::unique_ptr<Forecaster>()>& factory,
    std::size_t min_history, int horizon, std::size_t step) {
    if (horizon < 1 || step < 1 || min_history < 2) {
        throw std::invalid_argument("backtest: bad parameters");
    }
    BacktestResult result;
    for (std::size_t origin = min_history;
         origin + static_cast<std::size_t>(horizon) <= series.size();
         origin += step) {
        const auto model = factory();
        model->fit(std::span<const double>(series.data(), origin));
        const std::vector<double> pred = model->forecast(horizon);
        const std::span<const double> actual(series.data() + origin,
                                             static_cast<std::size_t>(horizon));
        if (result.model.empty()) result.model = model->name();

        BacktestFold fold;
        fold.origin = origin;
        fold.mape = ts::mean_absolute_percentage_error(actual, pred);
        double se = 0.0;
        for (std::size_t t = 0; t < actual.size(); ++t) {
            se += (actual[t] - pred[t]) * (actual[t] - pred[t]);
        }
        fold.rmse = std::sqrt(se / static_cast<double>(actual.size()));

        // Peak APE: top decile of actuals within the fold.
        const double p90 = ts::quantile(actual, 0.9);
        double peak_acc = 0.0;
        std::size_t peak_n = 0;
        for (std::size_t t = 0; t < actual.size(); ++t) {
            if (actual[t] >= p90 && std::abs(actual[t]) > 1e-9) {
                peak_acc += std::abs(actual[t] - pred[t]) / std::abs(actual[t]);
                ++peak_n;
            }
        }
        fold.peak_mape = peak_n > 0 ? peak_acc / static_cast<double>(peak_n) : 0.0;
        result.folds.push_back(fold);
    }
    if (result.folds.empty()) {
        throw std::invalid_argument("backtest: series too short for any fold");
    }
    for (const BacktestFold& f : result.folds) {
        result.mean_mape += f.mape;
        result.mean_rmse += f.rmse;
        result.mean_peak_mape += f.peak_mape;
    }
    const auto n = static_cast<double>(result.folds.size());
    result.mean_mape /= n;
    result.mean_rmse /= n;
    result.mean_peak_mape /= n;
    return result;
}

std::vector<BacktestResult> compare_models(const std::vector<double>& series,
                                           int seasonal_period,
                                           std::size_t min_history,
                                           int horizon, std::size_t step,
                                           unsigned seed) {
    const TemporalModel models[] = {
        TemporalModel::kSeasonalNaive, TemporalModel::kAutoregressive,
        TemporalModel::kHoltWinters,   TemporalModel::kNeuralNetwork,
        TemporalModel::kEnsemble,
    };
    std::vector<BacktestResult> results;
    for (const TemporalModel m : models) {
        results.push_back(backtest(
            series,
            [&] { return make_forecaster(m, seasonal_period, seed); },
            min_history, horizon, step));
    }
    std::sort(results.begin(), results.end(),
              [](const BacktestResult& a, const BacktestResult& b) {
                  return a.mean_mape < b.mean_mape;
              });
    return results;
}

}  // namespace atm::forecast
