#pragma once

#include <memory>
#include <vector>

#include "forecast/forecaster.hpp"
#include "forecast/nn.hpp"
#include "timeseries/features.hpp"

namespace atm::forecast {

/// Configuration of the MLP temporal model.
struct MlpForecasterOptions {
    /// Consecutive lags fed to the network.
    int num_lags = 6;
    /// Seasonality in samples; > 0 adds one seasonal-lag input feature
    /// (96 = one day of 15-minute windows).
    int seasonal_period = 96;
    /// Hidden layer widths (empty = linear model trained by SGD).
    std::vector<int> hidden = {12};
    Activation activation = Activation::kTanh;
    MlpTrainOptions train;
    /// Optional caller-owned scratch (not owned) shared by fit() and
    /// forecast() — the fleet scheduler's per-worker arena-backed
    /// workspace, reused across boxes. Results are identical with or
    /// without it; null keeps per-call local scratch.
    MlpWorkspace* workspace = nullptr;
};

/// Neural-network forecaster: the paper's temporal model for signature
/// series (PRACTISE-style), realized as a small MLP over lag + seasonal
/// features with min-max-scaled inputs/targets.
///
/// Multi-step forecasts are produced by iterating one-step predictions and
/// feeding them back into the lag window, while seasonal features read
/// genuine history where available.
class MlpForecaster final : public Forecaster {
  public:
    explicit MlpForecaster(MlpForecasterOptions options = {});

    void fit(std::span<const double> history) override;
    [[nodiscard]] std::vector<double> forecast(int horizon) const override;
    [[nodiscard]] std::string name() const override { return "mlp"; }

    [[nodiscard]] const MlpForecasterOptions& options() const { return options_; }

  private:
    MlpForecasterOptions options_;
    std::unique_ptr<MlpNetwork> network_;
    ts::MinMaxScaler scaler_;
    std::vector<double> history_;
    bool degenerate_ = false;  ///< constant history: skip the network
    double constant_value_ = 0.0;
};

}  // namespace atm::forecast
