#pragma once

#include <vector>

#include "forecast/forecaster.hpp"

namespace atm::forecast {

/// Holt-Winters additive triple exponential smoothing:
///   level_t  = alpha (x_t − season_{t−m}) + (1−alpha)(level_{t−1} + trend_{t−1})
///   trend_t  = beta (level_t − level_{t−1}) + (1−beta) trend_{t−1}
///   season_t = gamma (x_t − level_t) + (1−gamma) season_{t−m}
/// with forecasts level + h·trend + season. The classical statistical
/// workhorse for strongly seasonal series; cheaper than the MLP and more
/// adaptive than AR(p) — a natural middle entry for the forecaster
/// ablation.
struct HoltWintersOptions {
    double alpha = 0.25;  ///< level smoothing in (0, 1)
    double beta = 0.02;   ///< trend smoothing in [0, 1)
    double gamma = 0.25;  ///< seasonal smoothing in (0, 1)
    /// Damping on the trend during multi-step forecasts; < 1 keeps long
    /// horizons from running away on noisy data-center series.
    double trend_damping = 0.9;
};

class HoltWintersForecaster final : public Forecaster {
  public:
    /// `period` = season length in samples (96 for daily / 15-minute).
    explicit HoltWintersForecaster(int period, HoltWintersOptions options = {});

    void fit(std::span<const double> history) override;
    [[nodiscard]] std::vector<double> forecast(int horizon) const override;
    [[nodiscard]] std::string name() const override { return "holt-winters"; }

  private:
    int period_;
    HoltWintersOptions options_;
    double level_ = 0.0;
    double trend_ = 0.0;
    std::vector<double> season_;
    bool fit_called_ = false;
    bool fitted_ = false;    ///< seasonal state initialized (enough history)
    double fallback_ = 0.0;  ///< short histories: predict last value
};

/// Averages the forecasts of several independently fitted models. Simple
/// forecast combination is a strong robustness baseline: it rarely beats
/// the best member but reliably avoids the worst one.
class EnsembleForecaster final : public Forecaster {
  public:
    explicit EnsembleForecaster(std::vector<std::unique_ptr<Forecaster>> members);

    void fit(std::span<const double> history) override;
    [[nodiscard]] std::vector<double> forecast(int horizon) const override;
    [[nodiscard]] std::string name() const override { return "ensemble"; }

  private:
    std::vector<std::unique_ptr<Forecaster>> members_;
};

}  // namespace atm::forecast
