#pragma once

#include "resize/policies.hpp"

namespace atm::resize {

/// Input to the multi-resource DRF allocator: per-VM demand series for
/// both resources plus per-resource budgets and thresholds.
struct MultiResourceInput {
    /// cpu_demands[i] / ram_demands[i] = VM i's series over the window.
    std::vector<std::vector<double>> cpu_demands;
    std::vector<std::vector<double>> ram_demands;
    double cpu_capacity = 0.0;
    double ram_capacity = 0.0;
    double alpha = 0.6;
};

/// Per-VM allocations for both resources.
struct MultiResourceResult {
    std::vector<double> cpu_capacities;
    std::vector<double> ram_capacities;
    int cpu_tickets = 0;
    int ram_tickets = 0;
};

/// Dominant Resource Fairness (Ghodsi et al., NSDI'11 — reference [17] of
/// the paper): allocations progress in rounds that equalize each VM's
/// *dominant share* — the larger of its CPU-share and RAM-share of the
/// box. Demands are the ticket-free requirements (peak demand / alpha).
/// Unlike per-resource max-min, a VM heavy on one resource cannot also
/// crowd out the other resource.
///
/// Implemented as progressive filling on the dominant share: repeatedly
/// grant the unsatisfied VM with the smallest dominant share an
/// infinitesimal step, discretized by granting proportional slices until
/// either resource or every request is exhausted.
MultiResourceResult drf_resize(const MultiResourceInput& input);

}  // namespace atm::resize
