#include "resize/reduced_demand.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace atm::resize {
namespace {

/// Tickets seen when the allocation covers demands up to `level`:
/// #{t : d_t > level}. `demands` are the (discretized) series values.
int tickets_above(std::span<const double> demands, double level) {
    int count = 0;
    for (double d : demands) {
        if (d > level + 1e-12) ++count;
    }
    return count;
}

}  // namespace

ReducedDemandSet build_reduced_demand_set(std::span<const double> demand,
                                          double alpha, double epsilon,
                                          double lower_bound,
                                          double upper_bound,
                                          double keep_capacity) {
    if (alpha <= 0.0 || alpha > 1.0) {
        throw std::invalid_argument("build_reduced_demand_set: alpha must be in (0, 1]");
    }
    if (lower_bound < 0.0) lower_bound = 0.0;

    // Step 1: epsilon-discretize (round demands *up*, the safety margin).
    std::vector<double> disc(demand.begin(), demand.end());
    for (double& d : disc) {
        if (d < 0.0) d = 0.0;
        if (epsilon > 0.0) d = std::ceil(d / epsilon - 1e-12) * epsilon;
    }

    // Step 2: unique values, descending, 0 appended.
    std::vector<double> levels = disc;
    std::sort(levels.begin(), levels.end(), std::greater<>());
    levels.erase(std::unique(levels.begin(), levels.end(),
                             [](double a, double b) { return std::abs(a - b) < 1e-12; }),
                 levels.end());
    if (levels.empty() || levels.back() > 1e-12) levels.push_back(0.0);

    // Step 3: candidates with capacities and ticket counts.
    ReducedDemandSet out;
    out.candidates.reserve(levels.size());
    for (double level : levels) {
        CapacityCandidate c;
        c.demand_level = level;
        c.capacity = level <= 1e-12 ? 0.0 : level / alpha;
        c.tickets = tickets_above(disc, level);
        out.candidates.push_back(c);
    }

    // Step 3b: the no-op candidate (keep the current allocation).
    if (keep_capacity >= 0.0) {
        CapacityCandidate c;
        c.capacity = keep_capacity;
        c.demand_level = keep_capacity * alpha;
        c.tickets = tickets_above(disc, c.demand_level);
        out.candidates.push_back(c);
    }

    // Step 4: capacity bounds.
    if (upper_bound >= 0.0) {
        std::erase_if(out.candidates, [&](const CapacityCandidate& c) {
            return c.capacity > upper_bound + 1e-9;
        });
        if (out.candidates.empty()) {
            // Even the cheapest candidate exceeds the physical box: allocate
            // the whole upper bound and accept the residual tickets.
            CapacityCandidate c;
            c.capacity = upper_bound;
            c.demand_level = upper_bound * alpha;
            c.tickets = tickets_above(disc, c.demand_level);
            out.candidates.push_back(c);
        }
    }
    if (lower_bound > 0.0) {
        const double effective_lb =
            upper_bound >= 0.0 ? std::min(lower_bound, upper_bound) : lower_bound;
        std::erase_if(out.candidates, [&](const CapacityCandidate& c) {
            return c.capacity < effective_lb - 1e-9;
        });
        const bool have_lb = !out.candidates.empty() &&
                             std::abs(out.candidates.back().capacity - effective_lb) < 1e-9;
        if (!have_lb) {
            CapacityCandidate c;
            c.capacity = effective_lb;
            c.demand_level = effective_lb * alpha;
            c.tickets = tickets_above(disc, c.demand_level);
            out.candidates.push_back(c);
        }
    }

    // Keep strictly decreasing capacity order (P then non-decreasing).
    std::sort(out.candidates.begin(), out.candidates.end(),
              [](const CapacityCandidate& a, const CapacityCandidate& b) {
                  return a.capacity > b.capacity;
              });
    out.candidates.erase(
        std::unique(out.candidates.begin(), out.candidates.end(),
                    [](const CapacityCandidate& a, const CapacityCandidate& b) {
                        return std::abs(a.capacity - b.capacity) < 1e-9;
                    }),
        out.candidates.end());
    return out;
}

}  // namespace atm::resize
