#include "resize/policies.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace atm::resize {
namespace {

void validate(const ResizeInput& input) {
    if (input.demands.empty()) {
        throw std::invalid_argument("resize: no VMs");
    }
    if (input.alpha <= 0.0 || input.alpha > 1.0) {
        throw std::invalid_argument("resize: alpha must be in (0, 1]");
    }
    if (input.total_capacity < 0.0) {
        throw std::invalid_argument("resize: negative capacity");
    }
    if (!input.lower_bounds.empty() &&
        input.lower_bounds.size() != input.demands.size()) {
        throw std::invalid_argument("resize: lower bound count mismatch");
    }
    if (!input.epsilons.empty() &&
        input.epsilons.size() != input.demands.size()) {
        throw std::invalid_argument("resize: epsilon count mismatch");
    }
    if (!input.current_capacities.empty() &&
        input.current_capacities.size() != input.demands.size()) {
        throw std::invalid_argument("resize: current capacity count mismatch");
    }
}

/// Lower bounds, dropped wholesale if they alone exceed the budget.
std::vector<double> effective_lower_bounds(const ResizeInput& input) {
    if (input.lower_bounds.empty()) {
        return std::vector<double>(input.demands.size(), 0.0);
    }
    const double sum = std::accumulate(input.lower_bounds.begin(),
                                       input.lower_bounds.end(), 0.0);
    if (sum > input.total_capacity + 1e-9) {
        return std::vector<double>(input.demands.size(), 0.0);
    }
    return input.lower_bounds;
}

MckpInstance build_instance(const ResizeInput& input, bool discretize) {
    MckpInstance instance;
    instance.total_capacity = input.total_capacity;
    const std::vector<double> lbs = effective_lower_bounds(input);
    instance.groups.reserve(input.demands.size());
    for (std::size_t i = 0; i < input.demands.size(); ++i) {
        const double eps =
            !discretize ? 0.0
            : input.epsilons.empty() ? input.epsilon
                                     : input.epsilons[i];
        const double keep = input.current_capacities.empty()
                                ? -1.0
                                : input.current_capacities[i];
        instance.groups.push_back(build_reduced_demand_set(
            input.demands[i], input.alpha, eps, lbs[i],
            /*upper_bound=*/input.total_capacity, keep));
    }
    if (input.metrics != nullptr) {
        std::uint64_t candidates = 0;
        for (const ReducedDemandSet& g : instance.groups) {
            candidates += g.candidates.size();
        }
        input.metrics->add("resize.mckp.candidates", candidates);
    }
    return instance;
}

ResizeResult from_solution(const ResizeInput& input, const MckpSolution& sol) {
    ResizeResult result;
    result.capacities = sol.capacities;
    result.feasible = sol.feasible;
    // Recount tickets on the *raw* demands: the MCKP objective counts
    // tickets on discretized demands, which upper-bounds the real count.
    result.tickets =
        tickets_for_allocation(input.demands, result.capacities, input.alpha);
    return result;
}

}  // namespace

int tickets_for_allocation(const std::vector<std::vector<double>>& demands,
                           const std::vector<double>& capacities, double alpha) {
    if (demands.size() != capacities.size()) {
        throw std::invalid_argument("tickets_for_allocation: size mismatch");
    }
    int total = 0;
    for (std::size_t i = 0; i < demands.size(); ++i) {
        const double limit = alpha * capacities[i];
        for (double d : demands[i]) {
            if (d > limit + 1e-12) ++total;
        }
    }
    return total;
}

ResizeResult atm_resize(const ResizeInput& input) {
    validate(input);
    return from_solution(
        input, solve_mckp_greedy(build_instance(input, /*discretize=*/true),
                                 input.metrics, input.cancel));
}

ResizeResult atm_resize_exact(const ResizeInput& input, int grid_steps) {
    validate(input);
    return from_solution(
        input,
        solve_mckp_exact(build_instance(input, /*discretize=*/true), grid_steps));
}

ResizeResult max_min_fairness_resize(const ResizeInput& input) {
    validate(input);
    const std::size_t n = input.demands.size();

    // Threshold-aware request: the smallest allocation keeping VM i
    // ticket-free the whole window.
    std::vector<double> request(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double peak = input.demands[i].empty()
                                ? 0.0
                                : *std::max_element(input.demands[i].begin(),
                                                    input.demands[i].end());
        request[i] = peak / input.alpha;
    }

    // Water-filling: serve requests in increasing order; each unsatisfied
    // VM gets at most an equal share of what remains.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return request[a] < request[b]; });

    ResizeResult result;
    result.capacities.assign(n, 0.0);
    double remaining = input.total_capacity;
    std::size_t unsatisfied = n;
    for (std::size_t idx : order) {
        const double fair_share = remaining / static_cast<double>(unsatisfied);
        const double grant = std::min(request[idx], fair_share);
        result.capacities[idx] = grant;
        remaining -= grant;
        --unsatisfied;
    }
    result.tickets =
        tickets_for_allocation(input.demands, result.capacities, input.alpha);
    result.feasible = true;
    return result;
}

ResizeResult stingy_resize(const ResizeInput& input) {
    validate(input);
    ResizeResult result;
    result.capacities.reserve(input.demands.size());
    double used = 0.0;
    for (const auto& d : input.demands) {
        const double peak = d.empty() ? 0.0 : *std::max_element(d.begin(), d.end());
        result.capacities.push_back(peak);
        used += peak;
    }
    result.feasible = used <= input.total_capacity + 1e-9;
    result.tickets =
        tickets_for_allocation(input.demands, result.capacities, input.alpha);
    return result;
}

std::string to_string(ResizePolicy policy) {
    switch (policy) {
        case ResizePolicy::kAtmGreedy: return "atm";
        case ResizePolicy::kAtmGreedyNoDiscretization: return "atm-no-eps";
        case ResizePolicy::kMaxMinFairness: return "max-min";
        case ResizePolicy::kStingy: return "stingy";
    }
    return "unknown";
}

ResizeResult apply_policy(ResizePolicy policy, const ResizeInput& input) {
    switch (policy) {
        case ResizePolicy::kAtmGreedy:
            return atm_resize(input);
        case ResizePolicy::kAtmGreedyNoDiscretization: {
            ResizeInput no_eps = input;
            no_eps.epsilon = 0.0;
            no_eps.epsilons.clear();
            return atm_resize(no_eps);
        }
        case ResizePolicy::kMaxMinFairness:
            return max_min_fairness_resize(input);
        case ResizePolicy::kStingy:
            return stingy_resize(input);
    }
    throw std::invalid_argument("apply_policy: unknown policy");
}

}  // namespace atm::resize
