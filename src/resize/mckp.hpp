#pragma once

#include <vector>

#include "resize/reduced_demand.hpp"

namespace atm::exec {
class CancellationToken;
}
namespace atm::obs {
class MetricsRegistry;
}

namespace atm::resize {

/// A multi-choice knapsack instance: one candidate group per VM; exactly
/// one candidate must be chosen per group; the sum of chosen capacities
/// must not exceed `total_capacity`; minimize the sum of chosen ticket
/// counts (problem R' of Section IV-A1).
struct MckpInstance {
    std::vector<ReducedDemandSet> groups;
    double total_capacity = 0.0;
};

/// Solution: `choice[i]` indexes groups[i].candidates; `capacities[i]` is
/// the chosen allocation; `total_tickets` the objective value.
struct MckpSolution {
    std::vector<int> choice;
    std::vector<double> capacities;
    int total_tickets = 0;
    double used_capacity = 0.0;
    bool feasible = true;
};

/// Greedy MTRV solver in the spirit of Pisinger's "minimal algorithm" as
/// the paper applies it (Section IV-A1): start every VM at its maximal
/// candidate (fewest tickets); while the capacity constraint is violated,
/// downgrade the VM with the lowest marginal ticket reduction value
///   MTRV = (P_{i,o} − P_{i,o−1}) / (D'_{i,o−1} − D'_{i,o})
/// i.e. the fewest extra tickets per unit of capacity released, one
/// candidate step at a time, until the allocations fit.
///
/// If the instance is infeasible even with every VM at its minimal
/// candidate (possible with lower bounds), the minimal choice is returned
/// with `feasible = false`.
///
/// When `metrics` is non-null, records deterministic counters:
/// `resize.mckp.groups`, `resize.mckp.greedy_iterations` (downgrade
/// steps taken) and `resize.mckp.infeasible`.
///
/// `cancel` (optional, not owned) is a cooperative-cancellation token
/// checked every 64 downgrade iterations ("resize.mckp") so a box past
/// its deadline aborts mid-solve. Null disables the check.
MckpSolution solve_mckp_greedy(const MckpInstance& instance,
                               obs::MetricsRegistry* metrics = nullptr,
                               const exec::CancellationToken* cancel = nullptr);

/// Exact MCKP solver via dynamic programming over a discretized capacity
/// grid of `grid_steps` cells (capacities are scaled down — conservatively
/// floored — so the solution never exceeds the true budget). Exponential
/// memory is avoided but the grid makes it approximate within one cell;
/// with grid_steps large relative to candidate count it is exact for
/// integral-capacity instances. Intended as a test/ablation oracle on
/// small boxes, not for production use.
MckpSolution solve_mckp_exact(const MckpInstance& instance, int grid_steps = 4096);

}  // namespace atm::resize
