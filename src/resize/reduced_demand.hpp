#pragma once

#include <span>
#include <vector>

namespace atm::resize {

/// One capacity candidate for a VM in the multi-choice knapsack problem.
///
/// `demand_level` is a (possibly ε-discretized) demand value from the VM's
/// reduced demand set D'_i (Lemma 4.1); `capacity` is the smallest
/// allocation under which no window with demand <= demand_level tickets,
/// i.e. capacity = demand_level / alpha; `tickets` is P_{i,v}: the number
/// of windows whose demand strictly exceeds demand_level.
///
/// Note on the paper: Lemma 4.1 states C*_i ∈ D_i ∪ {0} and the worked
/// example counts tickets as demand > candidate, which is exact for
/// alpha = 1. For alpha < 1 the ticket count changes at capacity
/// breakpoints D_t / alpha, so we carry both the demand level (candidate
/// identity, as in the paper) and the implied capacity (what the knapsack
/// constraint consumes). With alpha = 1 the two coincide and this reduces
/// to the paper's formulation verbatim.
struct CapacityCandidate {
    double demand_level = 0.0;
    double capacity = 0.0;
    int tickets = 0;
};

/// The reduced demand set D'_i of one VM: unique (discretized) demand
/// values in strictly decreasing order, 0 appended last, each with its
/// ticket count P_{i,v} (non-decreasing down the list).
struct ReducedDemandSet {
    std::vector<CapacityCandidate> candidates;
};

/// Builds D'_i from a predicted demand series (Section IV-A1).
///
/// `alpha` is the ticket threshold as a fraction (0.6); `epsilon` is the
/// discretization factor: demands are rounded *up* to the next multiple of
/// epsilon before deduplication ("rounding up demands makes the resizing
/// algorithm more aggressive in allocating resources" — it also provides
/// the safety margin). epsilon <= 0 disables discretization.
///
/// `lower_bound` / `upper_bound` clamp the candidate *capacities*
/// (Section IV-A1 last paragraph: lower bound = pre-resize peak usage so
/// unfinished demand does not spill over; upper bound = physical box
/// capacity). Candidates whose capacity falls outside are dropped; if the
/// lower bound removes the 0 candidate, the smallest kept candidate is the
/// lower bound itself (with its real ticket count). An empty or all-zero
/// series yields the single candidate {0, 0, 0}.
/// `keep_capacity`, when >= 0, inserts the VM's *current* allocation as an
/// extra candidate. Lemma 4.1 shows capacities above the maximum demand
/// cannot improve the (predicted) objective — but shrinking a VM that has
/// zero predicted tickets buys nothing either, and makes the allocation
/// fragile against prediction error. With the current size as a candidate
/// the greedy keeps over-provisioned VMs untouched and releases their
/// slack first under budget pressure (the downgrade from "current" to the
/// top demand candidate costs zero predicted tickets, i.e. has MTRV 0).
ReducedDemandSet build_reduced_demand_set(std::span<const double> demand,
                                          double alpha, double epsilon,
                                          double lower_bound = 0.0,
                                          double upper_bound = -1.0,
                                          double keep_capacity = -1.0);

}  // namespace atm::resize
