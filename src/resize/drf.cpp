#include "resize/drf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace atm::resize {

MultiResourceResult drf_resize(const MultiResourceInput& input) {
    const std::size_t n = input.cpu_demands.size();
    if (n == 0 || input.ram_demands.size() != n) {
        throw std::invalid_argument("drf_resize: demand shape mismatch");
    }
    if (input.alpha <= 0.0 || input.alpha > 1.0) {
        throw std::invalid_argument("drf_resize: alpha must be in (0, 1]");
    }
    if (input.cpu_capacity < 0.0 || input.ram_capacity < 0.0) {
        throw std::invalid_argument("drf_resize: negative capacity");
    }

    // Ticket-free requirements per VM and resource.
    std::vector<double> cpu_req(n, 0.0);
    std::vector<double> ram_req(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const auto& c = input.cpu_demands[i];
        const auto& r = input.ram_demands[i];
        cpu_req[i] = (c.empty() ? 0.0 : *std::max_element(c.begin(), c.end())) /
                     input.alpha;
        ram_req[i] = (r.empty() ? 0.0 : *std::max_element(r.begin(), r.end())) /
                     input.alpha;
    }

    MultiResourceResult result;
    result.cpu_capacities.assign(n, 0.0);
    result.ram_capacities.assign(n, 0.0);

    // Progressive filling on the dominant share. Each unsatisfied VM i
    // grows along its demand vector direction; we advance the VM with the
    // smallest dominant share by one "step" = 1% of its remaining request,
    // until resources or requests are exhausted. O(n * steps), exact
    // enough for allocation purposes and trivially correct.
    double cpu_left = input.cpu_capacity;
    double ram_left = input.ram_capacity;
    std::vector<bool> satisfied(n, false);
    std::vector<double> dominant(n, 0.0);

    auto dominant_share = [&](std::size_t i) {
        const double cpu_share = input.cpu_capacity > 0.0
                                     ? result.cpu_capacities[i] / input.cpu_capacity
                                     : 0.0;
        const double ram_share = input.ram_capacity > 0.0
                                     ? result.ram_capacities[i] / input.ram_capacity
                                     : 0.0;
        return std::max(cpu_share, ram_share);
    };

    for (int guard = 0; guard < 1000000; ++guard) {
        // Pick the unsatisfied VM with the smallest dominant share.
        std::size_t pick = n;
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < n; ++i) {
            if (satisfied[i]) continue;
            const double d = dominant_share(i);
            if (d < best) {
                best = d;
                pick = i;
            }
        }
        if (pick == n) break;  // everyone satisfied

        const double cpu_missing = cpu_req[pick] - result.cpu_capacities[pick];
        const double ram_missing = ram_req[pick] - result.ram_capacities[pick];
        if (cpu_missing <= 1e-9 && ram_missing <= 1e-9) {
            satisfied[pick] = true;
            continue;
        }
        // Step: 2% of the total request (bounded below to guarantee
        // progress) along the demand direction, clipped by availability.
        double cpu_step = std::max(cpu_missing * 0.02, cpu_req[pick] * 0.005);
        double ram_step = std::max(ram_missing * 0.02, ram_req[pick] * 0.005);
        cpu_step = std::min({cpu_step, cpu_missing, cpu_left});
        ram_step = std::min({ram_step, ram_missing, ram_left});
        if (cpu_step <= 1e-12 && ram_step <= 1e-12) {
            // This VM can make no progress (resources gone): freeze it.
            satisfied[pick] = true;
            // When one resource is exhausted, VMs needing only the other
            // may still progress — keep looping.
            continue;
        }
        result.cpu_capacities[pick] += cpu_step;
        result.ram_capacities[pick] += ram_step;
        cpu_left -= cpu_step;
        ram_left -= ram_step;
    }

    auto count = [&](const std::vector<std::vector<double>>& demands,
                     const std::vector<double>& caps) {
        int total = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const double limit = input.alpha * caps[i];
            for (double d : demands[i]) {
                if (d > limit + 1e-12) ++total;
            }
        }
        return total;
    };
    result.cpu_tickets = count(input.cpu_demands, result.cpu_capacities);
    result.ram_tickets = count(input.ram_demands, result.ram_capacities);
    return result;
}

}  // namespace atm::resize
