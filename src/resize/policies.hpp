#pragma once

#include <string>
#include <vector>

#include "resize/mckp.hpp"

namespace atm::exec {
class CancellationToken;
}
namespace atm::obs {
class MetricsRegistry;
}

namespace atm::resize {

/// Input to a per-box, per-resource resizing decision: the (predicted)
/// demand series of every co-located VM over the resizing window, the
/// box's total virtual capacity, and the ticket threshold.
struct ResizeInput {
    /// demands[i] = demand series of VM i over the resizing window (T
    /// ticketing windows), in capacity units (GHz or GB).
    std::vector<std::vector<double>> demands;
    /// Total virtual capacity C at the box (constraint 5).
    double total_capacity = 0.0;
    /// Ticket threshold as a fraction (paper default 0.6).
    double alpha = 0.6;
    /// Discretization factor epsilon; <= 0 disables (paper evaluates 5).
    double epsilon = 0.0;
    /// Optional per-VM epsilon overrides (e.g. a percentage of each VM's
    /// current capacity); empty = use the scalar `epsilon` for every VM.
    std::vector<double> epsilons;
    /// Optional per-VM capacity lower bounds (pre-resize peak usage);
    /// empty = no lower bounds. If the bounds alone exceed the budget they
    /// are dropped (the practical fallback documented in DESIGN.md).
    std::vector<double> lower_bounds;
    /// Optional per-VM current allocations; when set, each VM's current
    /// size becomes an extra MCKP candidate so over-provisioned VMs keep
    /// their slack unless the budget needs it (robustness to prediction
    /// error at zero predicted cost; see build_reduced_demand_set).
    std::vector<double> current_capacities;
    /// Optional stage-metrics sink (not owned): the ATM policies record
    /// `resize.mckp.candidates` and the greedy solver's iteration
    /// counters into it. Null disables instrumentation.
    obs::MetricsRegistry* metrics = nullptr;
    /// Optional cooperative-cancellation token (not owned), forwarded to
    /// the greedy MCKP solver which checks it every 64 downgrade
    /// iterations. Null disables the checks.
    const exec::CancellationToken* cancel = nullptr;
};

/// Per-VM capacity allocations chosen by a policy.
struct ResizeResult {
    std::vector<double> capacities;
    /// Tickets the allocation incurs on the *input* demand series.
    int tickets = 0;
    bool feasible = true;
};

/// The ATM resizing algorithm (Section IV): reduce each VM's demands via
/// Lemma 4.1 + epsilon discretization, then solve the MCKP greedily by
/// marginal ticket reduction values.
ResizeResult atm_resize(const ResizeInput& input);

/// Same, but solving the MCKP exactly (DP oracle) — ablation/testing.
ResizeResult atm_resize_exact(const ResizeInput& input, int grid_steps = 4096);

/// Max-min fairness baseline (Section IV-B): every VM requests the
/// capacity that would keep it ticket-free (max demand / alpha,
/// "considering its ticket threshold"); requests are satisfied by
/// water-filling in increasing order of request, splitting remaining
/// capacity equally among still-unsatisfied VMs — small VMs are protected,
/// large VMs absorb the shortage.
ResizeResult max_min_fairness_resize(const ResizeInput& input);

/// Stingy baseline (Section IV-B): allocate exactly the lower bound — the
/// maximum observed demand — "regardless of the ticket threshold".
ResizeResult stingy_resize(const ResizeInput& input);

/// Tickets incurred by an arbitrary allocation on the given demands
/// (sum over VMs of windows with demand > alpha * capacity).
int tickets_for_allocation(const std::vector<std::vector<double>>& demands,
                           const std::vector<double>& capacities, double alpha);

/// Policy selector used by benches and examples.
enum class ResizePolicy {
    kAtmGreedy,
    kAtmGreedyNoDiscretization,
    kMaxMinFairness,
    kStingy,
};
std::string to_string(ResizePolicy policy);
ResizeResult apply_policy(ResizePolicy policy, const ResizeInput& input);

}  // namespace atm::resize
