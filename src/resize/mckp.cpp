#include "resize/mckp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "exec/cancel.hpp"
#include "obs/metrics.hpp"

namespace atm::resize {
namespace {

constexpr int kInfTickets = std::numeric_limits<int>::max() / 4;

void validate(const MckpInstance& instance) {
    if (instance.total_capacity < 0.0) {
        throw std::invalid_argument("mckp: negative capacity budget");
    }
    for (const ReducedDemandSet& g : instance.groups) {
        if (g.candidates.empty()) {
            throw std::invalid_argument("mckp: empty candidate group");
        }
        for (std::size_t v = 1; v < g.candidates.size(); ++v) {
            if (g.candidates[v].capacity >= g.candidates[v - 1].capacity) {
                throw std::invalid_argument("mckp: candidates not strictly decreasing");
            }
        }
    }
}

MckpSolution assemble(const MckpInstance& instance, std::vector<int> choice,
                      bool feasible) {
    MckpSolution sol;
    sol.choice = std::move(choice);
    sol.feasible = feasible;
    sol.capacities.resize(instance.groups.size());
    for (std::size_t i = 0; i < instance.groups.size(); ++i) {
        const CapacityCandidate& c =
            instance.groups[i].candidates[static_cast<std::size_t>(sol.choice[i])];
        sol.capacities[i] = c.capacity;
        sol.total_tickets += c.tickets;
        sol.used_capacity += c.capacity;
    }
    return sol;
}

}  // namespace

MckpSolution solve_mckp_greedy(const MckpInstance& instance,
                               obs::MetricsRegistry* metrics,
                               const exec::CancellationToken* cancel) {
    validate(instance);
    const std::size_t n = instance.groups.size();
    std::vector<int> choice(n, 0);  // start: max capacity = fewest tickets
    double used = 0.0;
    for (const ReducedDemandSet& g : instance.groups) {
        used += g.candidates.front().capacity;
    }
    if (metrics != nullptr) metrics->add("resize.mckp.groups", n);

    std::uint64_t iterations = 0;
    while (used > instance.total_capacity + 1e-9) {
        // Cancellation point every 64 downgrades: cheap relative to the
        // O(n) scan below, frequent enough for deadline responsiveness.
        if ((iterations & 63u) == 0) exec::checkpoint(cancel, "resize.mckp");
        double best_mtrv = std::numeric_limits<double>::infinity();
        std::size_t best_i = n;
        double best_current_cap = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
            const auto& cands = instance.groups[i].candidates;
            const auto cur = static_cast<std::size_t>(choice[i]);
            if (cur + 1 >= cands.size()) continue;  // already minimal
            const double released = cands[cur].capacity - cands[cur + 1].capacity;
            const double extra =
                static_cast<double>(cands[cur + 1].tickets - cands[cur].tickets);
            const double mtrv = extra / released;
            // Ties broken toward the VM holding the most capacity: the
            // objective is indifferent, but spreading downgrades across
            // equal VMs avoids starving one of them (which would wreck its
            // throughput without reducing tickets any further).
            if (mtrv < best_mtrv - 1e-12 ||
                (mtrv < best_mtrv + 1e-12 && cands[cur].capacity > best_current_cap)) {
                best_mtrv = std::min(mtrv, best_mtrv);
                best_i = i;
                best_current_cap = cands[cur].capacity;
            }
        }
        if (best_i == n) {
            // Every VM already at its minimal candidate: infeasible budget.
            if (metrics != nullptr) {
                metrics->add("resize.mckp.greedy_iterations", iterations);
                metrics->add("resize.mckp.infeasible");
            }
            return assemble(instance, std::move(choice), /*feasible=*/false);
        }
        const auto& cands = instance.groups[best_i].candidates;
        const auto cur = static_cast<std::size_t>(choice[best_i]);
        used -= cands[cur].capacity - cands[cur + 1].capacity;
        ++choice[best_i];
        ++iterations;
    }
    if (metrics != nullptr) {
        metrics->add("resize.mckp.greedy_iterations", iterations);
    }
    return assemble(instance, std::move(choice), /*feasible=*/true);
}

MckpSolution solve_mckp_exact(const MckpInstance& instance, int grid_steps) {
    validate(instance);
    if (grid_steps < 1) throw std::invalid_argument("solve_mckp_exact: bad grid");
    const std::size_t n = instance.groups.size();
    if (n == 0) return MckpSolution{};

    const double unit =
        instance.total_capacity > 0.0
            ? instance.total_capacity / static_cast<double>(grid_steps)
            : 1.0;
    auto weight_of = [&](double capacity) {
        // Round capacity *up* to grid cells so any DP-feasible selection
        // also fits the real (continuous) budget.
        return static_cast<int>(std::ceil(capacity / unit - 1e-9));
    };

    const auto width = static_cast<std::size_t>(grid_steps) + 1;
    std::vector<int> dp(width, kInfTickets);
    std::vector<std::vector<int>> parent(
        n, std::vector<int>(width, -1));  // chosen candidate per (group, w)

    // Group 0 seeds the table.
    {
        const auto& cands = instance.groups[0].candidates;
        for (std::size_t v = 0; v < cands.size(); ++v) {
            const int w = weight_of(cands[v].capacity);
            if (w > grid_steps) continue;
            for (std::size_t budget = static_cast<std::size_t>(w); budget < width; ++budget) {
                if (cands[v].tickets < dp[budget]) {
                    dp[budget] = cands[v].tickets;
                    parent[0][budget] = static_cast<int>(v);
                }
            }
        }
    }
    for (std::size_t g = 1; g < n; ++g) {
        std::vector<int> next(width, kInfTickets);
        const auto& cands = instance.groups[g].candidates;
        for (std::size_t budget = 0; budget < width; ++budget) {
            for (std::size_t v = 0; v < cands.size(); ++v) {
                const int w = weight_of(cands[v].capacity);
                if (static_cast<std::size_t>(w) > budget) continue;
                const int prev = dp[budget - static_cast<std::size_t>(w)];
                if (prev >= kInfTickets) continue;
                const int total = prev + cands[v].tickets;
                if (total < next[budget]) {
                    next[budget] = total;
                    parent[g][budget] = static_cast<int>(v);
                }
            }
        }
        dp = std::move(next);
    }

    if (dp[width - 1] >= kInfTickets) {
        // Infeasible on the grid: report the all-minimal choice.
        std::vector<int> choice(n);
        for (std::size_t i = 0; i < n; ++i) {
            choice[i] = static_cast<int>(instance.groups[i].candidates.size()) - 1;
        }
        return assemble(instance, std::move(choice), /*feasible=*/false);
    }

    // Reconstruct choices backwards. The parent table stores, for each
    // (group, residual budget), the candidate achieving dp; walk it down.
    std::vector<int> choice(n, 0);
    std::size_t budget = width - 1;
    for (std::size_t g = n; g-- > 0;) {
        const int v = parent[g][budget];
        choice[g] = v;
        const int w = weight_of(
            instance.groups[g].candidates[static_cast<std::size_t>(v)].capacity);
        budget -= static_cast<std::size_t>(w);
    }
    return assemble(instance, std::move(choice), /*feasible=*/true);
}

}  // namespace atm::resize
