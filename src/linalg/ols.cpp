#include "linalg/ols.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace atm::la {
namespace {

double mean_of(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double acc = 0.0;
    for (double x : xs) acc += x;
    return acc / static_cast<double>(xs.size());
}

std::vector<std::span<const double>> as_views(
    const std::vector<std::vector<double>>& columns) {
    return {columns.begin(), columns.end()};
}

}  // namespace

double OlsFit::predict(std::span<const double> predictors) const {
    if (coefficients.empty()) return 0.0;
    if (predictors.size() + 1 != coefficients.size()) {
        throw std::invalid_argument("OlsFit::predict: predictor count mismatch");
    }
    double acc = coefficients[0];
    for (std::size_t j = 0; j < predictors.size(); ++j) {
        acc += coefficients[j + 1] * predictors[j];
    }
    return acc;
}

OlsFit ols_fit(std::span<const double> y,
               std::span<const std::span<const double>> predictors) {
    const std::size_t n = y.size();
    const std::size_t p = predictors.size();
    for (const auto& col : predictors) {
        if (col.size() != n) {
            throw std::invalid_argument("ols_fit: predictor length mismatch");
        }
    }
    if (n == 0) throw std::invalid_argument("ols_fit: empty response");

    Matrix x(n, p + 1);
    for (std::size_t i = 0; i < n; ++i) {
        x(i, 0) = 1.0;
        for (std::size_t j = 0; j < p; ++j) x(i, j + 1) = predictors[j][i];
    }

    OlsFit fit;
    fit.coefficients = solve_least_squares(x, y);
    fit.fitted.resize(n);
    fit.residuals.resize(n);
    double ss_res = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double acc = fit.coefficients[0];
        for (std::size_t j = 0; j < p; ++j) acc += fit.coefficients[j + 1] * predictors[j][i];
        fit.fitted[i] = acc;
        fit.residuals[i] = y[i] - acc;
        ss_res += fit.residuals[i] * fit.residuals[i];
    }
    const double ybar = mean_of(y);
    double ss_tot = 0.0;
    for (std::size_t i = 0; i < n; ++i) ss_tot += (y[i] - ybar) * (y[i] - ybar);
    if (ss_tot <= 0.0) {
        fit.r_squared = 1.0;  // constant response fit exactly by intercept
    } else {
        fit.r_squared = std::clamp(1.0 - ss_res / ss_tot, 0.0, 1.0);
    }
    if (n > p + 1) {
        fit.adjusted_r_squared =
            1.0 - (1.0 - fit.r_squared) * static_cast<double>(n - 1) /
                      static_cast<double>(n - p - 1);
    } else {
        fit.adjusted_r_squared = fit.r_squared;
    }
    return fit;
}

OlsFit ols_fit(std::span<const double> y,
               const std::vector<std::vector<double>>& predictors) {
    return ols_fit(y, as_views(predictors));
}

std::vector<double> variance_inflation_factors(
    std::span<const std::span<const double>> predictors) {
    constexpr double kMaxVif = 1e9;
    const std::size_t p = predictors.size();
    std::vector<double> vifs(p, 1.0);
    if (p < 2) return vifs;
    std::vector<std::span<const double>> others;
    others.reserve(p - 1);
    for (std::size_t j = 0; j < p; ++j) {
        others.clear();
        for (std::size_t k = 0; k < p; ++k) {
            if (k != j) others.push_back(predictors[k]);
        }
        const OlsFit fit = ols_fit(predictors[j], others);
        const double denom = 1.0 - fit.r_squared;
        vifs[j] = denom <= 1.0 / kMaxVif ? kMaxVif : 1.0 / denom;
    }
    return vifs;
}

std::vector<double> variance_inflation_factors(
    const std::vector<std::vector<double>>& predictors) {
    return variance_inflation_factors(as_views(predictors));
}

std::vector<std::size_t> reduce_multicollinearity(
    const std::vector<std::vector<double>>& predictors,
    double vif_threshold, obs::MetricsRegistry* metrics) {
    std::vector<std::size_t> kept(predictors.size());
    for (std::size_t i = 0; i < kept.size(); ++i) kept[i] = i;

    std::vector<std::span<const double>> current;
    while (kept.size() > 1) {
        current.clear();
        for (std::size_t idx : kept) current.push_back(predictors[idx]);
        const std::vector<double> vifs = variance_inflation_factors(current);
        if (metrics != nullptr) {
            metrics->add("linalg.vif.iterations");
            metrics->add("linalg.vif.checks", vifs.size());
        }
        const auto worst =
            std::max_element(vifs.begin(), vifs.end()) - vifs.begin();
        if (vifs[static_cast<std::size_t>(worst)] <= vif_threshold) break;
        kept.erase(kept.begin() + worst);
        if (metrics != nullptr) metrics->add("linalg.vif.removed");
    }
    return kept;
}

std::vector<std::size_t> forward_stepwise(
    std::span<const double> y,
    const std::vector<std::vector<double>>& candidates,
    double min_gain) {
    std::vector<std::size_t> selected;
    std::vector<bool> used(candidates.size(), false);
    double best_adj_r2 = -std::numeric_limits<double>::infinity();

    std::vector<std::span<const double>> trial;
    for (;;) {
        std::size_t best_j = candidates.size();
        double best_candidate_r2 = best_adj_r2;
        for (std::size_t j = 0; j < candidates.size(); ++j) {
            if (used[j]) continue;
            trial.clear();
            for (std::size_t idx : selected) trial.push_back(candidates[idx]);
            trial.push_back(candidates[j]);
            const OlsFit fit = ols_fit(y, trial);
            if (fit.adjusted_r_squared > best_candidate_r2 + min_gain) {
                best_candidate_r2 = fit.adjusted_r_squared;
                best_j = j;
            }
        }
        if (best_j == candidates.size()) break;
        selected.push_back(best_j);
        used[best_j] = true;
        best_adj_r2 = best_candidate_r2;
    }
    return selected;
}

}  // namespace atm::la
