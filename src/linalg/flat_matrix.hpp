#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace atm::la {

/// Contiguous row-major matrix of doubles with row-span access.
///
/// The allocation-free-kernel counterpart to `Matrix`: one flat buffer,
/// no per-row vectors, so a whole distance matrix (or DP table) is a
/// single cache-friendly block that can be reused across calls without
/// re-allocating. `operator[]` returns a row span, so code written
/// against `vector<vector<double>>` (`m[i][j]`, `m.size()`) ports with
/// no call-site changes; the converting constructor keeps nested-vector
/// literals (tests, examples) working as before.
class FlatMatrix {
  public:
    FlatMatrix() = default;

    /// rows x cols matrix filled with `fill`.
    FlatMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

    /// Converting constructor from nested rows (all rows must be equal
    /// length). Deliberately implicit: distance-matrix call sites built
    /// nested vectors for years and the O(n²) copy is test-sized.
    FlatMatrix(const std::vector<std::vector<double>>& nested) {  // NOLINT
        rows_ = nested.size();
        cols_ = rows_ == 0 ? 0 : nested.front().size();
        data_.reserve(rows_ * cols_);
        for (const auto& row : nested) {
            if (row.size() != cols_) {
                throw std::invalid_argument("FlatMatrix: ragged rows");
            }
            data_.insert(data_.end(), row.begin(), row.end());
        }
    }

    [[nodiscard]] std::size_t rows() const { return rows_; }
    [[nodiscard]] std::size_t cols() const { return cols_; }
    /// Row count — matches the `dist.size()` idiom of the nested-vector
    /// distance matrices this type replaces.
    [[nodiscard]] std::size_t size() const { return rows_; }
    [[nodiscard]] bool empty() const { return rows_ == 0; }

    [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
        return data_[r * cols_ + c];
    }
    [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
        return data_[r * cols_ + c];
    }

    [[nodiscard]] std::span<const double> operator[](std::size_t r) const {
        return {data_.data() + r * cols_, cols_};
    }
    [[nodiscard]] std::span<double> operator[](std::size_t r) {
        return {data_.data() + r * cols_, cols_};
    }

    /// Reshapes to rows x cols and fills every element (capacity is kept,
    /// so a reused instance stops allocating once it has seen its largest
    /// shape).
    void assign(std::size_t rows, std::size_t cols, double fill) {
        rows_ = rows;
        cols_ = cols;
        data_.assign(rows * cols, fill);
    }

    /// Raw row-major storage.
    [[nodiscard]] const std::vector<double>& data() const { return data_; }
    [[nodiscard]] std::vector<double>& data() { return data_; }

    friend bool operator==(const FlatMatrix& a, const FlatMatrix& b) = default;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

}  // namespace atm::la
