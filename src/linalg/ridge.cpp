#include "linalg/ridge.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/flat_matrix.hpp"

namespace atm::la {
namespace {

double mean_of(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double acc = 0.0;
    for (double x : xs) acc += x;
    return acc / static_cast<double>(xs.size());
}

}  // namespace

OlsFit ridge_fit(std::span<const double> y,
                 const std::vector<std::vector<double>>& predictors,
                 double lambda) {
    std::vector<std::span<const double>> views(predictors.begin(),
                                               predictors.end());
    return ridge_fit(y, views, lambda);
}

OlsFit ridge_fit(std::span<const double> y,
                 std::span<const std::span<const double>> predictors,
                 double lambda) {
    if (lambda < 0.0) throw std::invalid_argument("ridge_fit: negative lambda");
    const std::size_t n = y.size();
    const std::size_t p = predictors.size();
    if (n == 0) throw std::invalid_argument("ridge_fit: empty response");
    for (const auto& col : predictors) {
        if (col.size() != n) {
            throw std::invalid_argument("ridge_fit: predictor length mismatch");
        }
    }

    // Center y and X; solve (Xc'Xc + lambda I) b = Xc' yc; recover the
    // intercept as ybar - xbar·b.
    const double ybar = mean_of(y);
    std::vector<double> xbar(p, 0.0);
    for (std::size_t j = 0; j < p; ++j) xbar[j] = mean_of(predictors[j]);

    // Center each column once into a contiguous block (and y alongside)
    // instead of recomputing (x - xbar) for every (j, k) pair of the Gram
    // accumulation below — the subtracted values are identical, so the
    // accumulated sums are bit-for-bit the same.
    FlatMatrix xc(p, n);
    std::vector<double> yc(n);
    for (std::size_t i = 0; i < n; ++i) yc[i] = y[i] - ybar;
    for (std::size_t j = 0; j < p; ++j) {
        double* row = xc[j].data();
        const std::span<const double> col = predictors[j];
        const double mu = xbar[j];
        for (std::size_t i = 0; i < n; ++i) row[i] = col[i] - mu;
    }

    Matrix gram(p, p);
    std::vector<double> xty(p, 0.0);
    for (std::size_t j = 0; j < p; ++j) {
        const double* xj = xc[j].data();
        for (std::size_t k = j; k < p; ++k) {
            const double* xk = xc[k].data();
            double acc = 0.0;
            for (std::size_t i = 0; i < n; ++i) acc += xj[i] * xk[i];
            gram(j, k) = acc;
            gram(k, j) = acc;
        }
        gram(j, j) += lambda;
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) acc += xj[i] * yc[i];
        xty[j] = acc;
    }

    OlsFit fit;
    std::vector<double> beta;
    if (p == 0) {
        beta = {};
    } else {
        // Lambda > 0 guarantees SPD; lambda == 0 may be singular for
        // collinear designs, fall back to generic solve-by-QR.
        try {
            beta = solve_spd(gram, xty);
        } catch (const std::runtime_error&) {
            beta = solve(gram, xty);
        }
    }
    fit.coefficients.resize(p + 1);
    double intercept = ybar;
    for (std::size_t j = 0; j < p; ++j) {
        fit.coefficients[j + 1] = beta[j];
        intercept -= beta[j] * xbar[j];
    }
    fit.coefficients[0] = intercept;

    fit.fitted.resize(n);
    fit.residuals.resize(n);
    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double acc = fit.coefficients[0];
        for (std::size_t j = 0; j < p; ++j) acc += beta[j] * predictors[j][i];
        fit.fitted[i] = acc;
        fit.residuals[i] = y[i] - acc;
        ss_res += fit.residuals[i] * fit.residuals[i];
        ss_tot += (y[i] - ybar) * (y[i] - ybar);
    }
    fit.r_squared = ss_tot <= 0.0 ? 1.0 : std::clamp(1.0 - ss_res / ss_tot, 0.0, 1.0);
    fit.adjusted_r_squared =
        n > p + 1 ? 1.0 - (1.0 - fit.r_squared) * static_cast<double>(n - 1) /
                              static_cast<double>(n - p - 1)
                  : fit.r_squared;
    return fit;
}

double select_ridge_lambda(std::span<const double> y,
                           const std::vector<std::vector<double>>& predictors,
                           std::span<const double> candidates,
                           double holdout_fraction) {
    if (candidates.empty()) {
        throw std::invalid_argument("select_ridge_lambda: no candidates");
    }
    holdout_fraction = std::clamp(holdout_fraction, 0.05, 0.9);
    const std::size_t n = y.size();
    const auto train_n = static_cast<std::size_t>(
        static_cast<double>(n) * (1.0 - holdout_fraction));
    if (train_n < 2 || train_n >= n) {
        throw std::invalid_argument("select_ridge_lambda: series too short");
    }

    // Train columns are prefixes of the originals — view them, don't copy.
    std::vector<std::span<const double>> train_x(predictors.size());
    for (std::size_t j = 0; j < predictors.size(); ++j) {
        train_x[j] = std::span<const double>(predictors[j]).subspan(0, train_n);
    }
    const std::span<const double> train_y = y.subspan(0, train_n);

    double best_lambda = candidates[0];
    double best_mse = std::numeric_limits<double>::infinity();
    std::vector<double> at(predictors.size());
    for (double lambda : candidates) {
        const OlsFit fit = ridge_fit(train_y, train_x, lambda);
        double mse = 0.0;
        for (std::size_t i = train_n; i < n; ++i) {
            for (std::size_t j = 0; j < predictors.size(); ++j) {
                at[j] = predictors[j][i];
            }
            const double err = fit.predict(at) - y[i];
            mse += err * err;
        }
        if (mse < best_mse) {
            best_mse = mse;
            best_lambda = lambda;
        }
    }
    return best_lambda;
}

Matrix inverse(const Matrix& a) {
    const std::size_t n = a.rows();
    if (a.cols() != n) throw std::invalid_argument("inverse: need square matrix");
    // Gauss-Jordan on [A | I].
    Matrix w(n, 2 * n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) w(i, j) = a(i, j);
        w(i, n + i) = 1.0;
    }
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(w(r, col)) > std::abs(w(pivot, col))) pivot = r;
        }
        if (std::abs(w(pivot, col)) < 1e-12) {
            throw std::runtime_error("inverse: singular matrix");
        }
        if (pivot != col) {
            for (std::size_t j = 0; j < 2 * n; ++j) std::swap(w(pivot, j), w(col, j));
        }
        const double d = w(col, col);
        for (std::size_t j = 0; j < 2 * n; ++j) w(col, j) /= d;
        for (std::size_t r = 0; r < n; ++r) {
            if (r == col) continue;
            const double factor = w(r, col);
            if (factor == 0.0) continue;
            for (std::size_t j = 0; j < 2 * n; ++j) w(r, j) -= factor * w(col, j);
        }
    }
    Matrix out(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) out(i, j) = w(i, n + j);
    }
    return out;
}

double determinant(const Matrix& a) {
    const std::size_t n = a.rows();
    if (a.cols() != n) throw std::invalid_argument("determinant: need square matrix");
    Matrix w = a;
    double det = 1.0;
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(w(r, col)) > std::abs(w(pivot, col))) pivot = r;
        }
        if (std::abs(w(pivot, col)) < 1e-14) return 0.0;
        if (pivot != col) {
            for (std::size_t j = 0; j < n; ++j) std::swap(w(pivot, j), w(col, j));
            det = -det;
        }
        det *= w(col, col);
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = w(r, col) / w(col, col);
            if (factor == 0.0) continue;
            for (std::size_t j = col; j < n; ++j) w(r, j) -= factor * w(col, j);
        }
    }
    return det;
}

}  // namespace atm::la
