// Scalar reference kernels. These are the historical row-DP DTW loop and
// MLP inner loops moved here verbatim from cluster/dtw.cpp and
// forecast/nn.cpp — the golden suite pins that the move changed nothing,
// and every vector path is differentially tested against this table.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "linalg/simd/simd.hpp"

namespace atm::simd {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Grows `row` to at least `size` elements and fills the used prefix with
/// +inf. Capacity is never released, so a reused scratch stops
/// allocating once it has seen its largest series.
void reset_row(ScratchVec& row, std::size_t size) {
    if (row.size() < size) row.resize(size);
    std::fill(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(size), kInf);
}

double dtw_distance_scalar(const double* p, std::size_t n, const double* q,
                           std::size_t m, int band, DtwScratch& scratch) {
    // Two-row rolling DP over λ(i, j); index 0 is the virtual λ(0, ·) row.
    // Both rows start all-infinite; per DP row only the band window
    // [j_lo − 1, j_hi] is re-reset. That is sound because the window is
    // monotone in i (its center slope·i only moves right), so any cell a
    // later row reads outside an earlier row's window still holds the
    // +inf written here, never a stale value from two rows back.
    reset_row(scratch.prev, m + 1);
    reset_row(scratch.curr, m + 1);
    scratch.prev[0] = 0.0;

    // Effective band half-width scaled for unequal lengths.
    const double slope = n > 1 ? static_cast<double>(m) / static_cast<double>(n) : 1.0;

    for (std::size_t i = 1; i <= n; ++i) {
        std::size_t j_lo = 1;
        std::size_t j_hi = m;
        if (band >= 0) {
            const double center = slope * static_cast<double>(i);
            const auto lo = static_cast<long long>(std::floor(center)) - band;
            const auto hi = static_cast<long long>(std::ceil(center)) + band;
            j_lo = static_cast<std::size_t>(std::max(1LL, lo));
            j_hi = static_cast<std::size_t>(std::min(static_cast<long long>(m), hi));
        }
        double* prev = scratch.prev.data();
        double* curr = scratch.curr.data();
        std::fill(curr + (j_lo - 1), curr + j_hi + 1, kInf);
        for (std::size_t j = j_lo; j <= j_hi; ++j) {
            const double diff = p[i - 1] - q[j - 1];
            const double d = diff * diff;
            const double best =
                std::min({prev[j - 1], prev[j], curr[j - 1]});
            curr[j] = best == kInf ? kInf : d + best;
        }
        std::swap(scratch.prev, scratch.curr);
    }
    return scratch.prev[m];
}

void dtw_distance_batch_scalar(const double* const* ps,
                               const double* const* qs, std::size_t count,
                               std::size_t n, std::size_t m, int band,
                               DtwScratch& scratch, double* out) {
    for (std::size_t b = 0; b < count; ++b) {
        out[b] = dtw_distance_scalar(ps[b], n, qs[b], m, band, scratch);
    }
}

void mlp_forward_layer_scalar(const double* weights, const double* biases,
                              const double* in, std::size_t fan_in,
                              std::size_t fan_out, double* pre) {
    for (std::size_t j = 0; j < fan_out; ++j) {
        double acc = biases[j];
        const double* row = weights + j * fan_in;
        for (std::size_t i = 0; i < fan_in; ++i) acc += row[i] * in[i];
        pre[j] = acc;
    }
}

void mlp_backprop_delta_scalar(const double* next_weights,
                               const double* next_delta, std::size_t width,
                               std::size_t next_fan_out, double* delta) {
    for (std::size_t j = 0; j < width; ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k < next_fan_out; ++k) {
            acc += next_weights[k * width + j] * next_delta[k];
        }
        delta[j] = acc;
    }
}

void mlp_sgd_layer_scalar(double* weights, double* velocity, const double* in,
                          const double* deltas, std::size_t fan_in,
                          std::size_t fan_out, double lr, double momentum,
                          double weight_decay) {
    for (std::size_t j = 0; j < fan_out; ++j) {
        const double d = deltas[j];
        double* row = weights + j * fan_in;
        double* vel = velocity + j * fan_in;
        for (std::size_t i = 0; i < fan_in; ++i) {
            const double grad = d * in[i] + weight_decay * row[i];
            vel[i] = momentum * vel[i] - lr * grad;
            row[i] += vel[i];
        }
    }
}

}  // namespace

const KernelTable& scalar_kernel_table() {
    static const KernelTable table{
        Path::kScalar,
        dtw_distance_scalar,
        /*dtw_batch_width=*/1,
        dtw_distance_batch_scalar,
        mlp_forward_layer_scalar,
        mlp_backprop_delta_scalar,
        mlp_sgd_layer_scalar,
    };
    return table;
}

}  // namespace atm::simd
