#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "exec/arena.hpp"

/// Runtime-dispatched SIMD kernels for the two pipeline hot loops: the
/// banded DTW recurrence and the MLP forward/backward/update passes
/// (DESIGN.md §7.13).
///
/// Dispatch model: every binary carries the scalar reference kernels plus
/// whichever vector translation units the target architecture compiles
/// (AVX2/AVX-512 on x86-64, NEON on aarch64). The active path is chosen
/// once — CPUID probe for the best supported ISA, overridable with the
/// ATM_SIMD environment variable or the CLI `--simd` flag — and every
/// kernel call goes through one function-pointer table, so any path can
/// be forced for testing, reproduction, and differential comparison.
///
/// FP tolerance policy (the contract tests/test_simd.cpp and the golden
/// suite enforce):
///   * DTW is **bit-identical on every path**. The single-pair vector
///     kernel walks anti-diagonal wavefronts instead of rows, and the
///     batched kernel runs the row recurrence with one pair per lane;
///     both evaluate exactly the per-cell expression of the scalar
///     recurrence — one multiply, one three-way min, one add, never
///     fused (-ffp-contract=off) — and FP min/add per cell are
///     order-free here because each cell's operands are the same three
///     cells in every traversal.
///   * MLP backprop deltas and SGD/momentum updates are **bit-identical**:
///     they vectorize across units/weights while keeping each element's
///     accumulation order unchanged.
///   * MLP forward dot-products **reassociate** (lane-partial sums +
///     horizontal reduce): each layer's pre-activation may differ from
///     scalar by a few ULP (kMlpForwardMaxUlps bounds one call on
///     well-scaled inputs). Training then amplifies that seed difference
///     chaotically across epochs, so end-to-end forecasts on vectorized
///     paths are pinned by the tolerance-checked golden variant
///     (kGoldenMaxUlps + exact ticket counts) rather than byte identity;
///     the scalar path stays byte-identical to the checked-in golden.
namespace atm::simd {

/// Instruction-set paths a build may carry. kScalar is always compiled
/// and is the reference every other path is differentially tested
/// against; the vector paths exist only on their architecture.
enum class Path : int {
    kScalar = 0,
    kAvx2,
    kAvx512,
    kNeon,
};

/// Reusable scratch for the DTW kernels, grown on demand and never
/// shrunk (steady-state calls allocate nothing). The scalar path uses
/// `prev`/`curr` as the two rolling DP *rows*; the vector single-pair
/// path uses `prev`/`curr`/`next` as three rolling anti-*diagonals* plus
/// a reversed copy of q (`qrev`, so diagonal loads are contiguous) and
/// the per-row band windows (`jlo`/`jhi`). The batched kernel reuses
/// `prev`/`curr` as lane-interleaved rolling rows and stages the input
/// series lane-interleaved in `lanes_p`/`lanes_q`. Not thread-safe: one
/// scratch per thread/task.
/// Grown-on-demand buffer types for kernel scratch: default-constructed
/// they are plain heap vectors; constructed over an exec::Arena they
/// draw slab memory instead (per-worker workspaces, DESIGN.md §7.14).
using ScratchVec = exec::ArenaVector<double>;
using ScratchIdxVec = exec::ArenaVector<std::size_t>;

struct DtwScratch {
    DtwScratch() = default;
    /// Arena-backed scratch for workspace-lifetime reuse. The arena must
    /// outlive the scratch; see exec/arena.hpp's lifetime rules.
    explicit DtwScratch(exec::Arena* arena)
        : prev(exec::ArenaAllocator<double>(arena)),
          curr(exec::ArenaAllocator<double>(arena)),
          next(exec::ArenaAllocator<double>(arena)),
          qrev(exec::ArenaAllocator<double>(arena)),
          lanes_p(exec::ArenaAllocator<double>(arena)),
          lanes_q(exec::ArenaAllocator<double>(arena)),
          jlo(exec::ArenaAllocator<std::size_t>(arena)),
          jhi(exec::ArenaAllocator<std::size_t>(arena)) {}

    ScratchVec prev;
    ScratchVec curr;
    ScratchVec next;
    ScratchVec qrev;
    ScratchVec lanes_p;
    ScratchVec lanes_q;
    ScratchIdxVec jlo;
    ScratchIdxVec jhi;
};

/// The per-path kernel table. All pointers are non-null in every
/// registered table.
struct KernelTable {
    Path path;

    /// Banded DTW distance for non-empty p, q (the caller handles empty
    /// series). band < 0 = unconstrained. Scalar-path result is the
    /// historical row kernel's; vector paths are bit-identical to it for
    /// finite inputs (NaN propagation is unspecified — the pipeline
    /// repairs series before DTW).
    double (*dtw_distance)(const double* p, std::size_t n, const double* q,
                           std::size_t m, int band, DtwScratch& scratch);

    /// Pairs the batched DTW kernel folds into one pass (1 on the scalar
    /// path, the register lane count on vector paths). Callers size their
    /// flush groups with this.
    std::size_t dtw_batch_width;

    /// Batched banded DTW over `count` ≤ dtw_batch_width pairs that all
    /// share the same lengths (n, m) and band: writes out[b] =
    /// dtw_distance(ps[b], n, qs[b], m, band) for b < count. Vector paths
    /// run the *row* recurrence with one pair per lane — identical
    /// control flow and band windows across lanes, per-cell arithmetic
    /// exactly the scalar sequence — so every lane's result is
    /// bit-identical to the scalar kernel's (same finite-input caveat as
    /// dtw_distance). This is the throughput kernel behind the pairwise
    /// distance matrix, where the narrow band makes within-pair
    /// vectorization overhead-bound.
    void (*dtw_distance_batch)(const double* const* ps,
                               const double* const* qs, std::size_t count,
                               std::size_t n, std::size_t m, int band,
                               DtwScratch& scratch, double* out);

    /// One MLP layer's pre-activations: pre[j] = biases[j] +
    /// dot(weights[j*fan_in ..], in) for j in [0, fan_out). The dot
    /// product may reassociate (see tolerance policy above); the caller
    /// applies the activation.
    void (*mlp_forward_layer)(const double* weights, const double* biases,
                              const double* in, std::size_t fan_in,
                              std::size_t fan_out, double* pre);

    /// Raw backprop sums: delta[j] = sum_k next_weights[k*width + j] *
    /// next_delta[k], k ascending — bit-identical to scalar (the k-order
    /// per element is preserved; vectorization is across j). The caller
    /// multiplies by the activation gradient.
    void (*mlp_backprop_delta)(const double* next_weights,
                               const double* next_delta, std::size_t width,
                               std::size_t next_fan_out, double* delta);

    /// One layer's SGD + momentum weight update (biases stay with the
    /// caller): for each unit j and input i,
    ///   grad = deltas[j]*in[i] + weight_decay*w[j*fan_in+i]
    ///   vel  = momentum*vel - lr*grad;  w += vel
    /// Element-wise with unchanged per-element order: bit-identical.
    void (*mlp_sgd_layer)(double* weights, double* velocity, const double* in,
                          const double* deltas, std::size_t fan_in,
                          std::size_t fan_out, double lr, double momentum,
                          double weight_decay);
};

/// Documented differential bounds (see tolerance policy above).
/// One forward-layer call on well-scaled inputs (|weights| ≲ 1, |acts|
/// ≲ a few): lane-partitioned summation of L terms perturbs the dot
/// product by at most ~L·eps relative to the term magnitudes, far below
/// this bound; the slack covers cancellation-heavy draws.
inline constexpr std::uint64_t kMlpForwardMaxUlps = 4096;
/// End-to-end golden bound for vectorized paths: APE aggregates after
/// full MLP training runs. Training chaotically amplifies the per-call
/// reassociation seed, so this is an empirical envelope (measured ≲1e-9
/// relative on the golden scenario) — ticket counts, signatures, and DTW
/// counters must still match *exactly*.
inline constexpr std::uint64_t kGoldenMaxUlps = std::uint64_t{1} << 32;

/// ULP distance between two finite doubles (0 when bit-equal, including
/// across ±0.0); max() when either is NaN or they differ in sign.
std::uint64_t ulp_distance(double a, double b);

const char* to_string(Path path);

/// Parses "scalar" | "avx2" | "avx512" | "neon". Throws
/// std::invalid_argument on anything else.
Path parse_path(const std::string& name);

/// Paths whose kernels are compiled into this binary (always includes
/// kScalar), in ascending preference order.
std::vector<Path> compiled_paths();

/// Compiled paths this machine's CPU can actually execute.
std::vector<Path> supported_paths();

/// The most-preferred supported path (what auto-dispatch picks).
Path best_supported_path();

/// The active path. First use resolves it: the ATM_SIMD environment
/// variable if set (throwing std::invalid_argument on unknown or
/// unsupported values), otherwise best_supported_path().
Path active_path();

/// The active path's kernel table (same resolution as active_path()).
const KernelTable& active_kernels();

/// Forces the active path; throws std::invalid_argument if `path` is not
/// compiled in or not supported by this CPU. Takes effect for subsequent
/// kernel calls process-wide (the fleet driver records the path in its
/// metrics report, and the checkpoint journal header binds it, so a
/// resumed run never mixes paths).
void set_path(Path path);

/// Kernel table for an explicitly chosen path (throws like set_path).
/// Lets tests and benchmarks compare paths without mutating the global.
const KernelTable& kernels_for(Path path);

}  // namespace atm::simd
