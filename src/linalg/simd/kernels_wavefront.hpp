#pragma once

// Generic vectorized kernel bodies, parameterized over a vector-traits
// type V supplying:
//   V::kWidth                      lanes per register (doubles)
//   V::Reg                         register type
//   V::zero() / V::set1(x)         broadcast constructors
//   V::loadu(p) / V::storeu(p, r)  unaligned load/store
//   V::add / V::sub / V::mul / V::min   lane-wise arithmetic
//   V::hsum(r)                     horizontal sum (forward layer only)
// Each ISA translation unit (kernels_avx2.cpp, …) defines its traits and
// instantiates these templates under the matching target flags; this
// header itself must stay ISA-agnostic. All remainder lanes fall back to
// scalar tails that evaluate the identical per-element expressions.
//
// DTW layout: instead of the scalar kernel's row-by-row sweep, cells are
// visited by anti-diagonal d = i + j. Every cell on one diagonal depends
// only on diagonals d−1 and d−2, so the whole diagonal is data-parallel.
// Three rolling arrays indexed by i hold D(d−2), D(d−1), D(d) with
// D(d)[i] = λ(i, d−i); a reversed copy of q makes the q operand a
// contiguous ascending load (q[d−i−1] = qrev[m−d+i]). Per-cell
// arithmetic — one subtract, one multiply, a three-way min, one add —
// is exactly the scalar recurrence, so the result is bit-identical for
// finite inputs (see simd.hpp's tolerance policy).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "linalg/simd/simd.hpp"

namespace atm::simd {

inline constexpr double kWavefrontInf = std::numeric_limits<double>::infinity();

/// Per-row band windows [jlo[i], jhi[i]], i in [1, n] — the same
/// floor/ceil expressions as the scalar kernel, evaluated once. Windows
/// are always non-empty and both endpoints are nondecreasing in i.
inline void compute_band_windows(std::size_t n, std::size_t m, int band,
                                 ScratchIdxVec& jlo, ScratchIdxVec& jhi) {
    if (jlo.size() < n + 1) jlo.resize(n + 1);
    if (jhi.size() < n + 1) jhi.resize(n + 1);
    const double slope =
        n > 1 ? static_cast<double>(m) / static_cast<double>(n) : 1.0;
    for (std::size_t i = 1; i <= n; ++i) {
        std::size_t lo = 1;
        std::size_t hi = m;
        if (band >= 0) {
            const double center = slope * static_cast<double>(i);
            const auto l = static_cast<long long>(std::floor(center)) - band;
            const auto h = static_cast<long long>(std::ceil(center)) + band;
            lo = static_cast<std::size_t>(std::max(1LL, l));
            hi = static_cast<std::size_t>(
                std::min(static_cast<long long>(m), h));
        }
        jlo[i] = lo;
        jhi[i] = hi;
    }
}

template <typename V>
double dtw_distance_wavefront(const double* p, std::size_t n, const double* q,
                              std::size_t m, int band, DtwScratch& scratch) {
    const auto reset = [](ScratchVec& a, std::size_t size) {
        if (a.size() < size) a.resize(size);
        std::fill(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(size),
                  kWavefrontInf);
    };
    reset(scratch.prev, n + 1);
    reset(scratch.curr, n + 1);
    reset(scratch.next, n + 1);
    scratch.prev[0] = 0.0;  // λ(0, 0) on diagonal 0
    if (scratch.qrev.size() < m) scratch.qrev.resize(m);
    for (std::size_t k = 0; k < m; ++k) scratch.qrev[k] = q[m - 1 - k];
    compute_band_windows(n, m, band, scratch.jlo, scratch.jhi);

    double* d2 = scratch.prev.data();  // diagonal d − 2
    double* d1 = scratch.curr.data();  // diagonal d − 1
    double* d0 = scratch.next.data();  // diagonal being computed
    const std::size_t* jlo = scratch.jlo.data();
    const std::size_t* jhi = scratch.jhi.data();

    // Valid i-range of diagonal d: { i : jlo[i] ≤ d − i ≤ jhi[i] }. It is
    // contiguous, and because i + jhi[i] and i + jlo[i] are strictly
    // increasing in i, both endpoints are nondecreasing in d — a
    // two-pointer walk finds them in O(1) amortized. Instead of clearing
    // whole diagonals, only the cells a later diagonal can read are
    // patched to +inf: reads from D(d) land in [ilo(d) − 1, ihi(d) + 1]
    // (endpoints move by ≤ 1 per diagonal), so writing the valid cells
    // plus those two border cells fully determines every future read.
    std::size_t ilo = 1;
    std::size_t ihi = 0;
    for (std::size_t d = 2; d <= n + m; ++d) {
        while (ilo <= n && ilo + jhi[ilo] < d) ++ilo;
        while (ihi < n && (ihi + 1) + jlo[ihi + 1] <= d) ++ihi;
        if (ilo > ihi) {
            // Empty diagonal (possible under extreme length ratios with a
            // narrow band): future reads land in [ilo − 1, ilo + 1].
            for (std::size_t i = ilo - 1; i <= std::min(n, ilo + 1); ++i) {
                d0[i] = kWavefrontInf;
            }
        } else {
            const std::size_t len = ihi - ilo + 1;
            const double* pb = p + (ilo - 1);
            // Signed offset: m − d is negative once d passes m, so form
            // the base pointer from the full (non-negative) index
            // m − d + ilo rather than stepping below qrev's start.
            const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(m) -
                                       static_cast<std::ptrdiff_t>(d) +
                                       static_cast<std::ptrdiff_t>(ilo);
            const double* qb = scratch.qrev.data() + off;
            const double* d2b = d2 + (ilo - 1);  // λ(i−1, j−1)
            const double* d1a = d1 + (ilo - 1);  // λ(i−1, j)
            const double* d1b = d1 + ilo;        // λ(i, j−1)
            double* ob = d0 + ilo;
            std::size_t k = 0;
            for (; k + V::kWidth <= len; k += V::kWidth) {
                const auto diff = V::sub(V::loadu(pb + k), V::loadu(qb + k));
                const auto cost = V::mul(diff, diff);
                const auto best = V::min(
                    V::min(V::loadu(d2b + k), V::loadu(d1a + k)),
                    V::loadu(d1b + k));
                V::storeu(ob + k, V::add(cost, best));
            }
            for (; k < len; ++k) {
                const double diff = pb[k] - qb[k];
                const double cost = diff * diff;
                const double best = std::min(std::min(d2b[k], d1a[k]), d1b[k]);
                ob[k] = cost + best;
            }
            if (ilo >= 1) d0[ilo - 1] = kWavefrontInf;
            if (ihi + 1 <= n) d0[ihi + 1] = kWavefrontInf;
        }
        double* rotate = d2;
        d2 = d1;
        d1 = d0;
        d0 = rotate;
    }
    return d1[n];  // after the last rotation d1 holds diagonal n + m
}

/// Batched DTW: one pair per SIMD lane, scalar row-DP control flow.
///
/// All `count` pairs share (n, m, band), so every lane has the same band
/// windows and visits the same (i, j) cells in the same order — the loop
/// structure IS the scalar kernel's, with each scalar value widened to a
/// register of per-pair values. Inputs and the two rolling DP rows are
/// lane-interleaved (`buf[index * kWidth + lane]`) so every access is one
/// contiguous unaligned load/store. Per-cell arithmetic matches the
/// scalar sequence exactly (the scalar `best == inf ? inf : d + best`
/// guard is the plain IEEE add for finite d), so each lane's distance is
/// bit-identical to a per-pair scalar call. Unused lanes replay the last
/// pair; their results are discarded.
template <typename V>
void dtw_distance_batch_vec(const double* const* ps, const double* const* qs,
                            std::size_t count, std::size_t n, std::size_t m,
                            int band, DtwScratch& scratch, double* out) {
    constexpr std::size_t kW = V::kWidth;
    // The distance-matrix loop mostly batches pairs from one row of the
    // upper triangle, so all lanes usually share the same p series — a
    // broadcast then replaces the strided p staging entirely.
    bool shared_p = true;
    for (std::size_t b = 1; b < count; ++b) shared_p &= ps[b] == ps[0];
    if (!shared_p) {
        if (scratch.lanes_p.size() < n * kW) scratch.lanes_p.resize(n * kW);
        for (std::size_t lane = 0; lane < kW; ++lane) {
            const double* p = ps[lane < count ? lane : count - 1];
            for (std::size_t i = 0; i < n; ++i) {
                scratch.lanes_p[i * kW + lane] = p[i];
            }
        }
    }
    if (scratch.lanes_q.size() < m * kW) scratch.lanes_q.resize(m * kW);
    double* ql = scratch.lanes_q.data();
    for (std::size_t lane = 0; lane < kW; ++lane) {
        const double* q = qs[lane < count ? lane : count - 1];
        for (std::size_t j = 0; j < m; ++j) ql[j * kW + lane] = q[j];
    }
    const double* pl = scratch.lanes_p.data();

    const std::size_t row = (m + 1) * kW;
    const auto reset = [row](ScratchVec& a) {
        if (a.size() < row) a.resize(row);
        std::fill(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(row),
                  kWavefrontInf);
    };
    reset(scratch.prev);
    reset(scratch.curr);
    for (std::size_t lane = 0; lane < kW; ++lane) {
        scratch.prev[lane] = 0.0;  // λ(0, 0) in every lane
    }
    double* prev = scratch.prev.data();
    double* curr = scratch.curr.data();

    compute_band_windows(n, m, band, scratch.jlo, scratch.jhi);
    const auto infv = V::set1(kWavefrontInf);
    for (std::size_t i = 1; i <= n; ++i) {
        const std::size_t j_lo = scratch.jlo[i];
        const std::size_t j_hi = scratch.jhi[i];
        // Unlike the scalar kernel this resets only the left border cell
        // j_lo − 1: the compute loop overwrites all of [j_lo, j_hi]
        // anyway, cells right of the window were never written (windows
        // only move right, both buffers start all-inf), and cells left
        // of j_lo − 1 are never read again (window monotonicity) — so
        // every future read still sees exactly the scalar's values.
        V::storeu(curr + (j_lo - 1) * kW, infv);
        const auto pv =
            shared_p ? V::set1(ps[0][i - 1]) : V::loadu(pl + (i - 1) * kW);
        // The j recurrence chains through curr[j − 1]; carrying it in a
        // register keeps the chain to min + add, no store-to-load hop.
        auto left = infv;
        for (std::size_t j = j_lo; j <= j_hi; ++j) {
            const auto diff = V::sub(pv, V::loadu(ql + (j - 1) * kW));
            const auto cost = V::mul(diff, diff);
            const auto best = V::min(V::min(V::loadu(prev + (j - 1) * kW),
                                            V::loadu(prev + j * kW)),
                                     left);
            left = V::add(cost, best);
            V::storeu(curr + j * kW, left);
        }
        std::swap(prev, curr);
    }
    for (std::size_t b = 0; b < count; ++b) out[b] = prev[m * kW + b];
}

template <typename V>
void mlp_forward_layer_vec(const double* weights, const double* biases,
                           const double* in, std::size_t fan_in,
                           std::size_t fan_out, double* pre) {
    for (std::size_t j = 0; j < fan_out; ++j) {
        const double* row = weights + j * fan_in;
        auto accv = V::zero();
        std::size_t i = 0;
        for (; i + V::kWidth <= fan_in; i += V::kWidth) {
            accv = V::add(accv, V::mul(V::loadu(row + i), V::loadu(in + i)));
        }
        // Lane partials + horizontal sum reassociate the dot product —
        // the one place the tolerance policy allows ULP drift.
        double acc = biases[j] + V::hsum(accv);
        for (; i < fan_in; ++i) acc += row[i] * in[i];
        pre[j] = acc;
    }
}

template <typename V>
void mlp_backprop_delta_vec(const double* next_weights,
                            const double* next_delta, std::size_t width,
                            std::size_t next_fan_out, double* delta) {
    // Vectorized across j; each lane accumulates its own element in the
    // same ascending-k order as the scalar loop → bit-identical.
    std::size_t j = 0;
    for (; j + V::kWidth <= width; j += V::kWidth) {
        auto accv = V::zero();
        for (std::size_t k = 0; k < next_fan_out; ++k) {
            accv = V::add(accv, V::mul(V::loadu(next_weights + k * width + j),
                                       V::set1(next_delta[k])));
        }
        V::storeu(delta + j, accv);
    }
    for (; j < width; ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k < next_fan_out; ++k) {
            acc += next_weights[k * width + j] * next_delta[k];
        }
        delta[j] = acc;
    }
}

template <typename V>
void mlp_sgd_layer_vec(double* weights, double* velocity, const double* in,
                       const double* deltas, std::size_t fan_in,
                       std::size_t fan_out, double lr, double momentum,
                       double weight_decay) {
    const auto lrv = V::set1(lr);
    const auto mov = V::set1(momentum);
    const auto wdv = V::set1(weight_decay);
    for (std::size_t j = 0; j < fan_out; ++j) {
        const double d = deltas[j];
        const auto dv = V::set1(d);
        double* row = weights + j * fan_in;
        double* vel = velocity + j * fan_in;
        std::size_t i = 0;
        for (; i + V::kWidth <= fan_in; i += V::kWidth) {
            const auto rowv = V::loadu(row + i);
            const auto gradv =
                V::add(V::mul(dv, V::loadu(in + i)), V::mul(wdv, rowv));
            const auto velv =
                V::sub(V::mul(mov, V::loadu(vel + i)), V::mul(lrv, gradv));
            V::storeu(vel + i, velv);
            V::storeu(row + i, V::add(rowv, velv));
        }
        for (; i < fan_in; ++i) {
            const double grad = d * in[i] + weight_decay * row[i];
            vel[i] = momentum * vel[i] - lr * grad;
            row[i] += vel[i];
        }
    }
}

}  // namespace atm::simd
