#include "linalg/simd/simd.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <stdexcept>

namespace atm::simd {

// Registered by the per-ISA translation units actually compiled into
// this binary (see src/linalg/CMakeLists.txt for the gating).
const KernelTable& scalar_kernel_table();
#if defined(ATM_SIMD_HAVE_AVX2)
const KernelTable& avx2_kernel_table();
#endif
#if defined(ATM_SIMD_HAVE_AVX512)
const KernelTable& avx512_kernel_table();
#endif
#if defined(ATM_SIMD_HAVE_NEON)
const KernelTable& neon_kernel_table();
#endif

namespace {

bool cpu_supports(Path path) {
    switch (path) {
        case Path::kScalar:
            return true;
        case Path::kAvx2:
#if defined(ATM_SIMD_HAVE_AVX2)
            return __builtin_cpu_supports("avx2") != 0;
#else
            return false;
#endif
        case Path::kAvx512:
#if defined(ATM_SIMD_HAVE_AVX512)
            return __builtin_cpu_supports("avx512f") != 0;
#else
            return false;
#endif
        case Path::kNeon:
            // NEON is baseline on aarch64: compiled-in implies supported.
#if defined(ATM_SIMD_HAVE_NEON)
            return true;
#else
            return false;
#endif
    }
    return false;
}

const KernelTable* table_for(Path path) {
    switch (path) {
        case Path::kScalar:
            return &scalar_kernel_table();
#if defined(ATM_SIMD_HAVE_AVX2)
        case Path::kAvx2:
            return &avx2_kernel_table();
#endif
#if defined(ATM_SIMD_HAVE_AVX512)
        case Path::kAvx512:
            return &avx512_kernel_table();
#endif
#if defined(ATM_SIMD_HAVE_NEON)
        case Path::kNeon:
            return &neon_kernel_table();
#endif
        default:
            return nullptr;
    }
}

// The resolved active table. Resolution is lazy (first active_path() /
// active_kernels() call) so that set_path() or ATM_SIMD can take effect
// before any kernel runs; std::atomic keeps reads cheap and racing
// resolvers merely redundant, not unsafe.
std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable& resolve() {
    Path path = best_supported_path();
    if (const char* env = std::getenv("ATM_SIMD"); env != nullptr) {
        const Path forced = parse_path(env);
        if (!cpu_supports(forced)) {
            throw std::invalid_argument(
                std::string("ATM_SIMD=") + env +
                " is not supported by this build/CPU");
        }
        path = forced;
    }
    const KernelTable* table = table_for(path);
    g_active.store(table, std::memory_order_release);
    return *table;
}

}  // namespace

std::uint64_t ulp_distance(double a, double b) {
    if (a != a || b != b) {
        return ~std::uint64_t{0};
    }
    const auto ordered = [](double v) {
        // Map to a monotone signed integer line (sign-magnitude →
        // two's-complement ordering trick), so adjacent doubles differ
        // by 1 and ±0.0 coincide at 0.
        const auto bits = std::bit_cast<std::int64_t>(v);
        return bits >= 0 ? bits : std::int64_t(0x8000000000000000ULL) - bits;
    };
    const std::int64_t oa = ordered(a);
    const std::int64_t ob = ordered(b);
    return oa >= ob ? static_cast<std::uint64_t>(oa) - static_cast<std::uint64_t>(ob)
                    : static_cast<std::uint64_t>(ob) - static_cast<std::uint64_t>(oa);
}

const char* to_string(Path path) {
    switch (path) {
        case Path::kScalar:
            return "scalar";
        case Path::kAvx2:
            return "avx2";
        case Path::kAvx512:
            return "avx512";
        case Path::kNeon:
            return "neon";
    }
    return "unknown";
}

Path parse_path(const std::string& name) {
    if (name == "scalar") return Path::kScalar;
    if (name == "avx2") return Path::kAvx2;
    if (name == "avx512") return Path::kAvx512;
    if (name == "neon") return Path::kNeon;
    throw std::invalid_argument(
        "unknown SIMD path '" + name +
        "' (expected scalar|avx2|avx512|neon)");
}

std::vector<Path> compiled_paths() {
    std::vector<Path> paths{Path::kScalar};
#if defined(ATM_SIMD_HAVE_NEON)
    paths.push_back(Path::kNeon);
#endif
#if defined(ATM_SIMD_HAVE_AVX2)
    paths.push_back(Path::kAvx2);
#endif
#if defined(ATM_SIMD_HAVE_AVX512)
    paths.push_back(Path::kAvx512);
#endif
    return paths;
}

std::vector<Path> supported_paths() {
    std::vector<Path> paths;
    for (Path path : compiled_paths()) {
        if (cpu_supports(path)) {
            paths.push_back(path);
        }
    }
    return paths;
}

Path best_supported_path() {
    const std::vector<Path> paths = supported_paths();
    return paths.back();
}

Path active_path() {
    return active_kernels().path;
}

const KernelTable& active_kernels() {
    if (const KernelTable* table = g_active.load(std::memory_order_acquire)) {
        return *table;
    }
    return resolve();
}

void set_path(Path path) {
    g_active.store(&kernels_for(path), std::memory_order_release);
}

const KernelTable& kernels_for(Path path) {
    const KernelTable* table = table_for(path);
    if (table == nullptr) {
        throw std::invalid_argument(std::string("SIMD path '") +
                                    to_string(path) +
                                    "' is not compiled into this binary");
    }
    if (!cpu_supports(path)) {
        throw std::invalid_argument(std::string("SIMD path '") +
                                    to_string(path) +
                                    "' is not supported by this CPU");
    }
    return *table;
}

}  // namespace atm::simd
