// NEON instantiation of the generic wavefront/MLP kernels, compiled only
// on aarch64 where NEON is baseline (no runtime probe needed). Built
// with -ffp-contract=off and plain add/mul intrinsics — no vfma — to
// preserve the DTW bit-identity contract (see kernels_avx2.cpp).

#include <arm_neon.h>

#include "linalg/simd/kernels_wavefront.hpp"
#include "linalg/simd/simd.hpp"

namespace atm::simd {
namespace {

struct VecNeon {
    static constexpr std::size_t kWidth = 2;
    using Reg = float64x2_t;
    static Reg zero() { return vdupq_n_f64(0.0); }
    static Reg set1(double x) { return vdupq_n_f64(x); }
    static Reg loadu(const double* p) { return vld1q_f64(p); }
    static void storeu(double* p, Reg r) { vst1q_f64(p, r); }
    static Reg add(Reg a, Reg b) { return vaddq_f64(a, b); }
    static Reg sub(Reg a, Reg b) { return vsubq_f64(a, b); }
    static Reg mul(Reg a, Reg b) { return vmulq_f64(a, b); }
    static Reg min(Reg a, Reg b) { return vminq_f64(a, b); }
    static double hsum(Reg r) {
        return vgetq_lane_f64(r, 0) + vgetq_lane_f64(r, 1);
    }
};

double dtw_distance_neon(const double* p, std::size_t n, const double* q,
                         std::size_t m, int band, DtwScratch& scratch) {
    return dtw_distance_wavefront<VecNeon>(p, n, q, m, band, scratch);
}

void dtw_distance_batch_neon(const double* const* ps, const double* const* qs,
                             std::size_t count, std::size_t n, std::size_t m,
                             int band, DtwScratch& scratch, double* out) {
    dtw_distance_batch_vec<VecNeon>(ps, qs, count, n, m, band, scratch, out);
}

void mlp_forward_layer_neon(const double* weights, const double* biases,
                            const double* in, std::size_t fan_in,
                            std::size_t fan_out, double* pre) {
    mlp_forward_layer_vec<VecNeon>(weights, biases, in, fan_in, fan_out, pre);
}

void mlp_backprop_delta_neon(const double* next_weights,
                             const double* next_delta, std::size_t width,
                             std::size_t next_fan_out, double* delta) {
    mlp_backprop_delta_vec<VecNeon>(next_weights, next_delta, width,
                                    next_fan_out, delta);
}

void mlp_sgd_layer_neon(double* weights, double* velocity, const double* in,
                        const double* deltas, std::size_t fan_in,
                        std::size_t fan_out, double lr, double momentum,
                        double weight_decay) {
    mlp_sgd_layer_vec<VecNeon>(weights, velocity, in, deltas, fan_in, fan_out,
                               lr, momentum, weight_decay);
}

}  // namespace

const KernelTable& neon_kernel_table() {
    static const KernelTable table{
        Path::kNeon,
        dtw_distance_neon,
        /*dtw_batch_width=*/VecNeon::kWidth,
        dtw_distance_batch_neon,
        mlp_forward_layer_neon,
        mlp_backprop_delta_neon,
        mlp_sgd_layer_neon,
    };
    return table;
}

}  // namespace atm::simd
