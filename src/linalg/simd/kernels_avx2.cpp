// AVX2 instantiation of the generic wavefront/MLP kernels. Compiled with
// -mavx2 -ffp-contract=off (and deliberately NOT -mfma: contraction of
// mul+add into FMA would change results and break the DTW bit-identity
// contract). Only dispatched after __builtin_cpu_supports("avx2").

#include <immintrin.h>

#include "linalg/simd/kernels_wavefront.hpp"
#include "linalg/simd/simd.hpp"

namespace atm::simd {
namespace {

struct VecAvx2 {
    static constexpr std::size_t kWidth = 4;
    using Reg = __m256d;
    static Reg zero() { return _mm256_setzero_pd(); }
    static Reg set1(double x) { return _mm256_set1_pd(x); }
    static Reg loadu(const double* p) { return _mm256_loadu_pd(p); }
    static void storeu(double* p, Reg r) { _mm256_storeu_pd(p, r); }
    static Reg add(Reg a, Reg b) { return _mm256_add_pd(a, b); }
    static Reg sub(Reg a, Reg b) { return _mm256_sub_pd(a, b); }
    static Reg mul(Reg a, Reg b) { return _mm256_mul_pd(a, b); }
    static Reg min(Reg a, Reg b) { return _mm256_min_pd(a, b); }
    static double hsum(Reg r) {
        const __m128d lo = _mm256_castpd256_pd128(r);
        const __m128d hi = _mm256_extractf128_pd(r, 1);
        const __m128d pair = _mm_add_pd(lo, hi);
        const __m128d swapped = _mm_unpackhi_pd(pair, pair);
        return _mm_cvtsd_f64(_mm_add_sd(pair, swapped));
    }
};

double dtw_distance_avx2(const double* p, std::size_t n, const double* q,
                         std::size_t m, int band, DtwScratch& scratch) {
    return dtw_distance_wavefront<VecAvx2>(p, n, q, m, band, scratch);
}

void dtw_distance_batch_avx2(const double* const* ps, const double* const* qs,
                             std::size_t count, std::size_t n, std::size_t m,
                             int band, DtwScratch& scratch, double* out) {
    dtw_distance_batch_vec<VecAvx2>(ps, qs, count, n, m, band, scratch, out);
}

void mlp_forward_layer_avx2(const double* weights, const double* biases,
                            const double* in, std::size_t fan_in,
                            std::size_t fan_out, double* pre) {
    mlp_forward_layer_vec<VecAvx2>(weights, biases, in, fan_in, fan_out, pre);
}

void mlp_backprop_delta_avx2(const double* next_weights,
                             const double* next_delta, std::size_t width,
                             std::size_t next_fan_out, double* delta) {
    mlp_backprop_delta_vec<VecAvx2>(next_weights, next_delta, width,
                                    next_fan_out, delta);
}

void mlp_sgd_layer_avx2(double* weights, double* velocity, const double* in,
                        const double* deltas, std::size_t fan_in,
                        std::size_t fan_out, double lr, double momentum,
                        double weight_decay) {
    mlp_sgd_layer_vec<VecAvx2>(weights, velocity, in, deltas, fan_in, fan_out,
                               lr, momentum, weight_decay);
}

}  // namespace

const KernelTable& avx2_kernel_table() {
    static const KernelTable table{
        Path::kAvx2,
        dtw_distance_avx2,
        /*dtw_batch_width=*/VecAvx2::kWidth,
        dtw_distance_batch_avx2,
        mlp_forward_layer_avx2,
        mlp_backprop_delta_avx2,
        mlp_sgd_layer_avx2,
    };
    return table;
}

}  // namespace atm::simd
