// AVX-512 instantiation of the generic wavefront/MLP kernels. Compiled
// with -mavx512f -ffp-contract=off (no -mfma — see kernels_avx2.cpp).
// Only dispatched after __builtin_cpu_supports("avx512f").

#include <immintrin.h>

#include "linalg/simd/kernels_wavefront.hpp"
#include "linalg/simd/simd.hpp"

namespace atm::simd {
namespace {

struct VecAvx512 {
    static constexpr std::size_t kWidth = 8;
    using Reg = __m512d;
    static Reg zero() { return _mm512_setzero_pd(); }
    static Reg set1(double x) { return _mm512_set1_pd(x); }
    static Reg loadu(const double* p) { return _mm512_loadu_pd(p); }
    static void storeu(double* p, Reg r) { _mm512_storeu_pd(p, r); }
    static Reg add(Reg a, Reg b) { return _mm512_add_pd(a, b); }
    static Reg sub(Reg a, Reg b) { return _mm512_sub_pd(a, b); }
    static Reg mul(Reg a, Reg b) { return _mm512_mul_pd(a, b); }
    static Reg min(Reg a, Reg b) { return _mm512_min_pd(a, b); }
    static double hsum(Reg r) { return _mm512_reduce_add_pd(r); }
};

double dtw_distance_avx512(const double* p, std::size_t n, const double* q,
                           std::size_t m, int band, DtwScratch& scratch) {
    return dtw_distance_wavefront<VecAvx512>(p, n, q, m, band, scratch);
}

void dtw_distance_batch_avx512(const double* const* ps,
                               const double* const* qs, std::size_t count,
                               std::size_t n, std::size_t m, int band,
                               DtwScratch& scratch, double* out) {
    dtw_distance_batch_vec<VecAvx512>(ps, qs, count, n, m, band, scratch, out);
}

void mlp_forward_layer_avx512(const double* weights, const double* biases,
                              const double* in, std::size_t fan_in,
                              std::size_t fan_out, double* pre) {
    mlp_forward_layer_vec<VecAvx512>(weights, biases, in, fan_in, fan_out,
                                     pre);
}

void mlp_backprop_delta_avx512(const double* next_weights,
                               const double* next_delta, std::size_t width,
                               std::size_t next_fan_out, double* delta) {
    mlp_backprop_delta_vec<VecAvx512>(next_weights, next_delta, width,
                                      next_fan_out, delta);
}

void mlp_sgd_layer_avx512(double* weights, double* velocity, const double* in,
                          const double* deltas, std::size_t fan_in,
                          std::size_t fan_out, double lr, double momentum,
                          double weight_decay) {
    mlp_sgd_layer_vec<VecAvx512>(weights, velocity, in, deltas, fan_in,
                                 fan_out, lr, momentum, weight_decay);
}

}  // namespace

const KernelTable& avx512_kernel_table() {
    static const KernelTable table{
        Path::kAvx512,
        dtw_distance_avx512,
        /*dtw_batch_width=*/VecAvx512::kWidth,
        dtw_distance_batch_avx512,
        mlp_forward_layer_avx512,
        mlp_backprop_delta_avx512,
        mlp_sgd_layer_avx512,
    };
    return table;
}

}  // namespace atm::simd
