#include "linalg/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace atm::la {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows) {
        if (row.size() != cols_) {
            throw std::invalid_argument("Matrix: ragged initializer list");
        }
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

Matrix Matrix::column(std::span<const double> xs) {
    Matrix m(xs.size(), 1);
    for (std::size_t i = 0; i < xs.size(); ++i) m(i, 0) = xs[i];
    return m;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
    if (cols_ != rhs.rows_) {
        throw std::invalid_argument("Matrix multiply: shape mismatch");
    }
    Matrix out(rows_, rhs.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double aik = (*this)(i, k);
            if (aik == 0.0) continue;
            for (std::size_t j = 0; j < rhs.cols_; ++j) {
                out(i, j) += aik * rhs(k, j);
            }
        }
    }
    return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
        throw std::invalid_argument("Matrix add: shape mismatch");
    }
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + rhs.data_[i];
    return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
        throw std::invalid_argument("Matrix subtract: shape mismatch");
    }
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] - rhs.data_[i];
    return out;
}

Matrix Matrix::transposed() const {
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    }
    return out;
}

std::vector<double> Matrix::column_vector(std::size_t c) const {
    std::vector<double> out(rows_);
    for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, c);
    return out;
}

double Matrix::max_abs_diff(const Matrix& rhs) const {
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
        throw std::invalid_argument("max_abs_diff: shape mismatch");
    }
    double m = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        m = std::max(m, std::abs(data_[i] - rhs.data_[i]));
    }
    return m;
}

std::vector<double> solve(const Matrix& a, std::span<const double> b) {
    const std::size_t n = a.rows();
    if (a.cols() != n || b.size() != n) {
        throw std::invalid_argument("solve: need square A and matching b");
    }
    // Augmented working copy.
    Matrix w(n, n + 1);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) w(i, j) = a(i, j);
        w(i, n) = b[i];
    }
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(w(r, col)) > std::abs(w(pivot, col))) pivot = r;
        }
        if (std::abs(w(pivot, col)) < 1e-12) {
            throw std::runtime_error("solve: singular matrix");
        }
        if (pivot != col) {
            for (std::size_t j = col; j <= n; ++j) std::swap(w(pivot, j), w(col, j));
        }
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = w(r, col) / w(col, col);
            if (factor == 0.0) continue;
            for (std::size_t j = col; j <= n; ++j) w(r, j) -= factor * w(col, j);
        }
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = w(ii, n);
        for (std::size_t j = ii + 1; j < n; ++j) acc -= w(ii, j) * x[j];
        x[ii] = acc / w(ii, ii);
    }
    return x;
}

Matrix cholesky(const Matrix& a) {
    const std::size_t n = a.rows();
    if (a.cols() != n) throw std::invalid_argument("cholesky: need square A");
    Matrix l(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double acc = a(i, j);
            for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
            if (i == j) {
                if (acc <= 0.0) throw std::runtime_error("cholesky: matrix not SPD");
                l(i, j) = std::sqrt(acc);
            } else {
                l(i, j) = acc / l(j, j);
            }
        }
    }
    return l;
}

std::vector<double> solve_spd(const Matrix& a, std::span<const double> b) {
    const std::size_t n = a.rows();
    if (b.size() != n) throw std::invalid_argument("solve_spd: shape mismatch");
    const Matrix l = cholesky(a);
    // Forward: L y = b
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
        y[i] = acc / l(i, i);
    }
    // Back: Lᵀ x = y
    std::vector<double> x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k) acc -= l(k, ii) * x[k];
        x[ii] = acc / l(ii, ii);
    }
    return x;
}

QrResult qr_decompose(const Matrix& a) {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    if (m < n) throw std::invalid_argument("qr_decompose: need m >= n");
    // Householder on a working copy; accumulate Q implicitly then extract.
    Matrix r = a;
    Matrix qt = Matrix::identity(m);  // Qᵀ accumulated
    for (std::size_t k = 0; k < n; ++k) {
        // Householder vector for column k below the diagonal.
        double norm = 0.0;
        for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
        norm = std::sqrt(norm);
        if (norm < 1e-14) continue;
        const double alpha = r(k, k) >= 0 ? -norm : norm;
        std::vector<double> v(m, 0.0);
        v[k] = r(k, k) - alpha;
        for (std::size_t i = k + 1; i < m; ++i) v[i] = r(i, k);
        double vnorm2 = 0.0;
        for (std::size_t i = k; i < m; ++i) vnorm2 += v[i] * v[i];
        if (vnorm2 < 1e-28) continue;
        // Apply H = I - 2 v vᵀ / (vᵀv) to R and accumulate into Qᵀ.
        for (std::size_t j = 0; j < n; ++j) {
            double s = 0.0;
            for (std::size_t i = k; i < m; ++i) s += v[i] * r(i, j);
            s = 2.0 * s / vnorm2;
            for (std::size_t i = k; i < m; ++i) r(i, j) -= s * v[i];
        }
        for (std::size_t j = 0; j < m; ++j) {
            double s = 0.0;
            for (std::size_t i = k; i < m; ++i) s += v[i] * qt(i, j);
            s = 2.0 * s / vnorm2;
            for (std::size_t i = k; i < m; ++i) qt(i, j) -= s * v[i];
        }
    }
    QrResult out;
    out.r = Matrix(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) out.r(i, j) = r(i, j);
    }
    // Q thin = (Qᵀ)ᵀ restricted to first n columns.
    out.q = Matrix(m, n);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) out.q(i, j) = qt(j, i);
    }
    return out;
}

std::vector<double> solve_least_squares(const Matrix& a, std::span<const double> b) {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    if (m != b.size()) {
        throw std::invalid_argument("solve_least_squares: shape mismatch");
    }
    if (m < n) throw std::invalid_argument("solve_least_squares: need m >= n");
    // Fused implicit-Q Householder: each reflector is applied to the
    // working copy of A and to the right-hand side in the same sweep, so
    // the m×m Qᵀ that qr_decompose() accumulates is never materialized.
    // Same R factor and the same degeneracy guards as qr_decompose;
    // O(m·n²) work instead of O(m²·(n+m)).
    Matrix r = a;
    std::vector<double> qtb(b.begin(), b.end());
    std::vector<double> v(m, 0.0);
    for (std::size_t k = 0; k < n; ++k) {
        double norm = 0.0;
        for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
        norm = std::sqrt(norm);
        if (norm < 1e-14) continue;
        const double alpha = r(k, k) >= 0 ? -norm : norm;
        v[k] = r(k, k) - alpha;
        for (std::size_t i = k + 1; i < m; ++i) v[i] = r(i, k);
        double vnorm2 = 0.0;
        for (std::size_t i = k; i < m; ++i) vnorm2 += v[i] * v[i];
        if (vnorm2 < 1e-28) continue;
        // Apply H = I - 2 v vᵀ / (vᵀv) to R ...
        for (std::size_t j = 0; j < n; ++j) {
            double s = 0.0;
            for (std::size_t i = k; i < m; ++i) s += v[i] * r(i, j);
            s = 2.0 * s / vnorm2;
            for (std::size_t i = k; i < m; ++i) r(i, j) -= s * v[i];
        }
        // ... and to b, yielding Qᵀb directly.
        double s = 0.0;
        for (std::size_t i = k; i < m; ++i) s += v[i] * qtb[i];
        s = 2.0 * s / vnorm2;
        for (std::size_t i = k; i < m; ++i) qtb[i] -= s * v[i];
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = qtb[ii];
        for (std::size_t j = ii + 1; j < n; ++j) acc -= r(ii, j) * x[j];
        const double diag = r(ii, ii);
        // Rank-deficient columns get coefficient 0 (minimal-norm-ish choice)
        // rather than an exception: stepwise regression probes such designs.
        x[ii] = std::abs(diag) < 1e-12 ? 0.0 : acc / diag;
    }
    return x;
}

double dot(std::span<const double> xs, std::span<const double> ys) {
    assert(xs.size() == ys.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) acc += xs[i] * ys[i];
    return acc;
}

}  // namespace atm::la
