#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace atm::obs {
class MetricsRegistry;
}

namespace atm::la {

/// Result of an ordinary-least-squares fit y ~ intercept + X b.
struct OlsFit {
    /// Intercept followed by one coefficient per predictor, in input order.
    std::vector<double> coefficients;
    /// Fitted values, one per observation.
    std::vector<double> fitted;
    /// Residuals y - fitted.
    std::vector<double> residuals;
    /// Coefficient of determination in [0, 1] (clamped).
    double r_squared = 0.0;
    /// Adjusted R² penalizing predictor count; may be negative.
    double adjusted_r_squared = 0.0;

    /// Predicts a single response from predictor values (same order as the
    /// fit). Sizes must match coefficients.size() - 1.
    [[nodiscard]] double predict(std::span<const double> predictors) const;
};

/// Fits y on the given predictor columns with an intercept, using QR
/// least squares (robust to collinear predictor sets, which stepwise
/// regression probes deliberately).
///
/// `predictors[j]` is the j-th predictor series; all must be the same
/// length as y. Throws std::invalid_argument on shape mismatch.
///
/// This implements the paper's spatial model (Eq. 1): a dependent demand
/// series D_k is expressed as a linear combination f_k of the signature
/// series, with coefficients from "ordinary least square estimates"
/// (Section III-B).
OlsFit ols_fit(std::span<const double> y,
               const std::vector<std::vector<double>>& predictors);

/// Core overload over column *views*: fits against caller-owned storage
/// without copying any predictor column. The VIF / stepwise drivers below
/// assemble span lists over the original columns instead of materializing
/// per-trial copies; the nested-vector overload forwards here.
OlsFit ols_fit(std::span<const double> y,
               std::span<const std::span<const double>> predictors);

/// Variance inflation factor for each series in `predictors`: series j is
/// regressed on all the others and VIF_j = 1 / (1 - R²_j). A VIF above 4
/// flags multicollinearity (Section III-A Step 2). A lone predictor has
/// VIF 1. R² of 1 (exact collinearity) maps to a large finite value.
std::vector<double> variance_inflation_factors(
    const std::vector<std::vector<double>>& predictors);

/// View-based core (see ols_fit span overload).
std::vector<double> variance_inflation_factors(
    std::span<const std::span<const double>> predictors);

/// Iteratively removes multicollinear series: while any VIF exceeds
/// `vif_threshold`, drop the series with the largest VIF (it is best
/// explained by the remaining ones). Returns indices into the original
/// `predictors` that are kept, in ascending order. This is the paper's
/// Step 2 ("stepwise regression to remove the series that can be
/// represented as linear combinations of the other signature series").
/// When `metrics` is non-null, records `linalg.vif.iterations` (sweeps),
/// `linalg.vif.checks` (individual VIF evaluations) and
/// `linalg.vif.removed` counters — all deterministic.
std::vector<std::size_t> reduce_multicollinearity(
    const std::vector<std::vector<double>>& predictors,
    double vif_threshold = 4.0, obs::MetricsRegistry* metrics = nullptr);

/// Classical forward-selection stepwise regression: greedily adds the
/// predictor that most improves adjusted R² until no candidate improves it
/// by at least `min_gain`. Returns selected indices in selection order.
/// Provided for ablation against the VIF-driven backward elimination.
std::vector<std::size_t> forward_stepwise(
    std::span<const double> y,
    const std::vector<std::vector<double>>& candidates,
    double min_gain = 1e-4);

}  // namespace atm::la
