#pragma once

#include <span>
#include <vector>

#include "linalg/ols.hpp"

namespace atm::la {

/// Ridge (L2-regularized) regression: minimizes
///   ||y − b0 − X b||² + lambda ||b||²
/// (the intercept is not penalized; predictors are internally centered so
/// the penalty is scale-consistent). Shrinks coefficients of correlated
/// predictors — a robust alternative to stepwise elimination when a
/// signature set is still mildly collinear.
///
/// Returns the same OlsFit structure (coefficients = intercept then one
/// per predictor, fitted values, residuals, R²). lambda = 0 reproduces
/// OLS up to numerical error. Throws std::invalid_argument on shape
/// mismatch or negative lambda.
OlsFit ridge_fit(std::span<const double> y,
                 const std::vector<std::vector<double>>& predictors,
                 double lambda);

/// Core overload over column views (no copies of predictor columns; the
/// nested-vector overload forwards here). Columns are centered once into
/// one contiguous block, and the Gram matrix XcᵀXc and Xcᵀyc are
/// accumulated straight from it — no transposed()/product temporaries.
OlsFit ridge_fit(std::span<const double> y,
                 std::span<const std::span<const double>> predictors,
                 double lambda);

/// Leave-future-out lambda selection: fits on the first
/// `1 - holdout_fraction` of samples for each lambda in `candidates` and
/// returns the lambda with the lowest mean squared error on the held-out
/// suffix (time-series aware: validation never precedes training).
double select_ridge_lambda(std::span<const double> y,
                           const std::vector<std::vector<double>>& predictors,
                           std::span<const double> candidates,
                           double holdout_fraction = 0.25);

/// Inverse of a square matrix via Gauss-Jordan with partial pivoting.
/// Throws std::runtime_error if singular.
Matrix inverse(const Matrix& a);

/// Determinant via LU with partial pivoting (0 for singular inputs).
double determinant(const Matrix& a);

}  // namespace atm::la
