#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace atm::la {

/// Dense row-major matrix of doubles.
///
/// Deliberately minimal: exactly the operations the ATM pipeline needs
/// (OLS design matrices, normal equations, QR). No expression templates,
/// no views — sizes here are small (a box has ~20 series of ~700 samples).
class Matrix {
  public:
    Matrix() = default;

    /// rows x cols matrix, zero-initialized.
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

    /// Builds from nested initializer lists; all rows must be equal length.
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    /// Identity matrix of size n.
    static Matrix identity(std::size_t n);

    /// Column vector (n x 1) from samples.
    static Matrix column(std::span<const double> xs);

    [[nodiscard]] std::size_t rows() const { return rows_; }
    [[nodiscard]] std::size_t cols() const { return cols_; }

    [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
        return data_[r * cols_ + c];
    }
    [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
        return data_[r * cols_ + c];
    }

    /// Matrix product; throws std::invalid_argument on shape mismatch.
    [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
    [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
    [[nodiscard]] Matrix operator-(const Matrix& rhs) const;

    /// Transpose.
    [[nodiscard]] Matrix transposed() const;

    /// Copies column c into a vector.
    [[nodiscard]] std::vector<double> column_vector(std::size_t c) const;

    /// Maximum absolute element difference; used by tests.
    [[nodiscard]] double max_abs_diff(const Matrix& rhs) const;

    /// Raw row-major storage.
    [[nodiscard]] const std::vector<double>& data() const { return data_; }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// Solves the square system A x = b by Gaussian elimination with partial
/// pivoting. Throws std::invalid_argument on shape mismatch and
/// std::runtime_error if A is (numerically) singular.
std::vector<double> solve(const Matrix& a, std::span<const double> b);

/// Cholesky factor L (lower-triangular, A = L Lᵀ) of a symmetric
/// positive-definite matrix. Throws std::runtime_error if not SPD.
Matrix cholesky(const Matrix& a);

/// Solves A x = b for SPD A via Cholesky (forward + back substitution).
std::vector<double> solve_spd(const Matrix& a, std::span<const double> b);

/// Thin QR decomposition by Householder reflections: A (m x n, m >= n)
/// = Q R with Q (m x n) orthonormal columns and R (n x n) upper triangular.
struct QrResult {
    Matrix q;
    Matrix r;
};
QrResult qr_decompose(const Matrix& a);

/// Least-squares solution of min ||A x - b||² via Householder QR (more
/// numerically robust than normal equations for ill-conditioned designs).
/// The reflectors are applied to b in flight — implicit Q, no m×m
/// temporary — so the cost is O(m·n²) time and O(m·n) space.
std::vector<double> solve_least_squares(const Matrix& a, std::span<const double> b);

/// Dot product of two equal-length spans.
double dot(std::span<const double> xs, std::span<const double> ys);

}  // namespace atm::la
